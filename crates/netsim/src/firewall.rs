//! A DDoS-deflate-style rate-threshold firewall.
//!
//! The paper's Section 3.4 runs DDoS-deflate "at 150 requests per second
//! as the pre-defined firewall rule". Deflate works by polling `netstat`
//! periodically, counting connections per source, and banning sources
//! over the threshold. Two delays matter to the DOPE story:
//!
//! 1. the *polling interval* — violations between polls go unseen, and
//! 2. a per-traffic-class *detection lag* before the ban takes effect
//!    ("the start time for the firewall to detect the abnormal traffics
//!    is different among various traffic types", Fig 10) — connection
//!    table churn makes slow, heavy requests harder to attribute than
//!    high-volume floods.
//!
//! Sources below the threshold are **never** blocked — that blindness is
//! the DOPE operating region of Fig 11.

use crate::error::ConfigError;
use crate::request::SourceId;
use simcore::{SimDuration, SimTime};
use std::collections::HashMap;

/// Firewall decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirewallVerdict {
    /// Forward to the load balancer.
    Pass,
    /// Source is banned; drop.
    Blocked,
}

/// Static firewall configuration.
#[derive(Debug, Clone)]
pub struct FirewallConfig {
    /// Requests/second that triggers a ban (deflate default-style 150).
    pub threshold_rps: f64,
    /// How often the connection table is polled.
    pub poll_interval: SimDuration,
    /// Extra lag between a poll seeing a violation and the ban landing.
    pub detection_lag: SimDuration,
    /// How long a ban lasts (`None` = permanent for the run).
    pub ban_duration: Option<SimDuration>,
}

impl Default for FirewallConfig {
    fn default() -> Self {
        FirewallConfig {
            threshold_rps: 150.0,
            poll_interval: SimDuration::from_secs(1),
            detection_lag: SimDuration::from_secs(5),
            ban_duration: None,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct SourceState {
    /// Requests seen since the last poll.
    count_since_poll: u64,
    /// Pending ban lands at this instant.
    ban_pending_at: Option<SimTime>,
    /// Active ban expires at this instant (MAX = permanent).
    banned_until: Option<SimTime>,
}

/// Per-source rate-threshold firewall with polling and detection lag.
#[derive(Debug, Clone)]
pub struct Firewall {
    config: FirewallConfig,
    sources: HashMap<SourceId, SourceState>,
    last_poll: SimTime,
    blocked_requests: u64,
    passed_requests: u64,
    bans_issued: u64,
}

impl Firewall {
    /// New firewall; the first poll happens `poll_interval` after `start`.
    /// Panics on an out-of-range config; use [`Firewall::try_new`] to
    /// handle it as an error.
    pub fn new(start: SimTime, config: FirewallConfig) -> Self {
        Self::try_new(start, config).expect("invalid Firewall config")
    }

    /// Fallible constructor: rejects a non-positive rate threshold or a
    /// zero polling interval with a typed [`ConfigError`].
    pub fn try_new(start: SimTime, config: FirewallConfig) -> Result<Self, ConfigError> {
        if config.threshold_rps <= 0.0 || !config.threshold_rps.is_finite() {
            return Err(ConfigError::Parameter {
                component: "Firewall",
                field: "threshold_rps",
                value: config.threshold_rps,
            });
        }
        if config.poll_interval.is_zero() {
            return Err(ConfigError::Parameter {
                component: "Firewall",
                field: "poll_interval",
                value: 0.0,
            });
        }
        Ok(Firewall {
            config,
            sources: HashMap::new(),
            last_poll: start,
            blocked_requests: 0,
            passed_requests: 0,
            bans_issued: 0,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &FirewallConfig {
        &self.config
    }

    /// Run any due polls up to `now` (called lazily from `inspect`, or
    /// explicitly by the simulation's control slot).
    pub fn poll(&mut self, now: SimTime) {
        while now
            .checked_since(self.last_poll)
            .is_some_and(|d| d >= self.config.poll_interval)
        {
            self.last_poll += self.config.poll_interval;
            let poll_t = self.last_poll;
            let window_s = self.config.poll_interval.as_secs_f64();
            for state in self.sources.values_mut() {
                let rate = state.count_since_poll as f64 / window_s;
                state.count_since_poll = 0;
                if rate > self.config.threshold_rps
                    && state.banned_until.is_none()
                    && state.ban_pending_at.is_none()
                {
                    state.ban_pending_at = Some(poll_t + self.config.detection_lag);
                }
            }
        }
    }

    /// Inspect one request from `source` at `now`.
    pub fn inspect(&mut self, now: SimTime, source: SourceId) -> FirewallVerdict {
        self.poll(now);
        let config_ban = self.config.ban_duration;
        let state = self.sources.entry(source).or_default();

        // Mature a pending ban.
        if let Some(at) = state.ban_pending_at {
            if now >= at {
                state.ban_pending_at = None;
                state.banned_until = Some(match config_ban {
                    Some(d) => at + d,
                    None => SimTime::MAX,
                });
                self.bans_issued += 1;
            }
        }
        // Expire a finished ban.
        if let Some(until) = state.banned_until {
            if now >= until {
                state.banned_until = None;
            }
        }

        if state.banned_until.is_some() {
            self.blocked_requests += 1;
            FirewallVerdict::Blocked
        } else {
            state.count_since_poll += 1;
            self.passed_requests += 1;
            FirewallVerdict::Pass
        }
    }

    /// Whether `source` is currently banned (matured bans only).
    pub fn is_banned(&self, source: SourceId) -> bool {
        self.sources
            .get(&source)
            .map(|s| s.banned_until.is_some())
            .unwrap_or(false)
    }

    /// Total requests dropped.
    pub fn blocked_requests(&self) -> u64 {
        self.blocked_requests
    }

    /// Total requests passed.
    pub fn passed_requests(&self) -> u64 {
        self.passed_requests
    }

    /// Total bans issued.
    pub fn bans_issued(&self) -> u64 {
        self.bans_issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn out_of_range_config_is_a_typed_error() {
        let good = FirewallConfig {
            threshold_rps: 100.0,
            poll_interval: SimDuration::from_secs(1),
            detection_lag: SimDuration::from_secs(1),
            ban_duration: None,
        };
        assert!(Firewall::try_new(SimTime::ZERO, good.clone()).is_ok());
        let mut bad = good.clone();
        bad.threshold_rps = 0.0;
        assert_eq!(
            Firewall::try_new(SimTime::ZERO, bad).unwrap_err(),
            ConfigError::Parameter {
                component: "Firewall",
                field: "threshold_rps",
                value: 0.0,
            }
        );
        let mut bad = good;
        bad.poll_interval = SimDuration::ZERO;
        assert!(matches!(
            Firewall::try_new(SimTime::ZERO, bad).unwrap_err(),
            ConfigError::Parameter {
                field: "poll_interval",
                ..
            }
        ));
    }

    fn fw(threshold: f64, lag_s: u64) -> Firewall {
        Firewall::new(
            SimTime::ZERO,
            FirewallConfig {
                threshold_rps: threshold,
                poll_interval: SimDuration::from_secs(1),
                detection_lag: SimDuration::from_secs(lag_s),
                ban_duration: None,
            },
        )
    }

    /// Send `rate` requests/s from `src` over `secs` seconds; return how
    /// many passed.
    fn flood(f: &mut Firewall, src: SourceId, rate: u64, secs: u64, offset: SimTime) -> u64 {
        let mut passed = 0;
        for sec in 0..secs {
            for i in 0..rate {
                let t = offset
                    + SimDuration::from_secs(sec)
                    + SimDuration::from_micros(i * 1_000_000 / rate);
                if f.inspect(t, src) == FirewallVerdict::Pass {
                    passed += 1;
                }
            }
        }
        passed
    }

    #[test]
    fn below_threshold_never_banned() {
        let mut f = fw(150.0, 0);
        let passed = flood(&mut f, SourceId(1), 100, 30, SimTime::ZERO);
        assert_eq!(passed, 3000);
        assert!(!f.is_banned(SourceId(1)));
        assert_eq!(f.bans_issued(), 0);
    }

    #[test]
    fn above_threshold_banned_after_poll() {
        let mut f = fw(150.0, 0);
        // 1000 rps: the first poll at t=1 s sees the violation.
        flood(&mut f, SourceId(1), 1000, 3, SimTime::ZERO);
        assert!(f.is_banned(SourceId(1)));
        assert_eq!(f.bans_issued(), 1);
        // The first second passed; later traffic is dropped.
        assert!(f.passed_requests() >= 1000);
        assert!(f.blocked_requests() > 0);
    }

    #[test]
    fn detection_lag_lets_early_spikes_through() {
        let mut quick = fw(150.0, 0);
        let mut slow = fw(150.0, 5);
        let p_quick = flood(&mut quick, SourceId(1), 1000, 10, SimTime::ZERO);
        let p_slow = flood(&mut slow, SourceId(1), 1000, 10, SimTime::ZERO);
        // The laggy firewall admits ~5 extra seconds of flood — the
        // "partial high power spikes even with firewalls" of Fig 10.
        assert!(p_slow > p_quick + 3000, "quick={p_quick} slow={p_slow}");
    }

    #[test]
    fn sources_tracked_independently() {
        let mut f = fw(150.0, 0);
        flood(&mut f, SourceId(1), 1000, 3, SimTime::ZERO);
        flood(&mut f, SourceId(2), 50, 3, SimTime::ZERO);
        assert!(f.is_banned(SourceId(1)));
        assert!(!f.is_banned(SourceId(2)));
    }

    #[test]
    fn ban_expires() {
        let mut f = Firewall::new(
            SimTime::ZERO,
            FirewallConfig {
                threshold_rps: 150.0,
                poll_interval: SimDuration::from_secs(1),
                detection_lag: SimDuration::ZERO,
                ban_duration: Some(SimDuration::from_secs(10)),
            },
        );
        flood(&mut f, SourceId(1), 1000, 2, SimTime::ZERO);
        assert!(f.is_banned(SourceId(1)));
        // Ban landed at t=1 s (first poll), expires at t=11 s.
        assert_eq!(f.inspect(s(12), SourceId(1)), FirewallVerdict::Pass);
        assert!(!f.is_banned(SourceId(1)));
    }

    #[test]
    fn exactly_at_threshold_passes() {
        // Deflate bans *above* the threshold, not at it.
        let mut f = fw(150.0, 0);
        flood(&mut f, SourceId(1), 150, 10, SimTime::ZERO);
        assert!(!f.is_banned(SourceId(1)));
    }

    #[test]
    fn counters_consistent() {
        let mut f = fw(100.0, 0);
        flood(&mut f, SourceId(1), 500, 5, SimTime::ZERO);
        assert_eq!(f.passed_requests() + f.blocked_requests(), 2500);
    }

    #[test]
    fn botnet_under_threshold_evades_while_single_source_is_banned() {
        // The botnet evasion region of Fig 11: three bots each at
        // 149 req/s — one under the deflate trigger — deliver an
        // aggregate of 447 req/s (3× the single-source trigger) and are
        // never banned. Arrivals interleave across bots so every poll
        // window sees all three counters live simultaneously.
        let mut f = fw(150.0, 5);
        for sec in 0..30u64 {
            for i in 0..149u64 {
                for bot in 0..3u32 {
                    let t = SimTime::from_secs(sec)
                        + SimDuration::from_micros(i * 1_000_000 / 149 + u64::from(bot));
                    assert_eq!(
                        f.inspect(t, SourceId(bot)),
                        FirewallVerdict::Pass,
                        "bot {bot} blocked at {t:?}"
                    );
                }
            }
        }
        assert_eq!(f.bans_issued(), 0);
        assert_eq!(f.blocked_requests(), 0);

        // The same 447 req/s from one address is caught: banned at the
        // first poll, blocked once the 5 s detection lag elapses.
        let mut single = fw(150.0, 5);
        let passed = flood(&mut single, SourceId(9), 447, 30, SimTime::ZERO);
        assert!(single.is_banned(SourceId(9)));
        assert!(single.blocked_requests() > 0);
        assert!(passed < 447 * 30, "some of the flood must be dropped");
    }

    #[test]
    fn idle_source_state_resets_each_poll() {
        let mut f = fw(150.0, 0);
        // 200 requests in one burst within second 0 (i.e. 200 rps), then quiet.
        for i in 0..200 {
            f.inspect(SimTime::from_millis(i * 4), SourceId(1));
        }
        // Poll at t=1 s sees 200 > 150 → ban.
        f.inspect(s(2), SourceId(1));
        assert!(f.is_banned(SourceId(1)));
    }
}
