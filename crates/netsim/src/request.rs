//! The request model.
//!
//! A [`Request`] is one HTTP query entering the data center. It carries:
//!
//! * identity — a globally unique id, the URL it asks for (the paper's
//!   service types map 1:1 to URLs), and its source address;
//! * a *demand profile* — expected work in giga-cycles and a
//!   CPU-boundedness factor `beta` governing how much DVFS slows it;
//! * a *power character* — intensity and DVFS-sensitivity `gamma` used by
//!   the server power model while the request is in service;
//! * SLA bookkeeping — arrival time, deadline, and client timeout;
//! * `is_attack` — ground truth for evaluation. Defenses never read it;
//!   the whole point of DOPE is that attack requests are well-formed.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// Globally unique request id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// URL / service-type id. The paper's EC application exposes one URL per
/// service kernel (Colla-Filt, K-means, Word-Count, Text-Cont, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UrlId(pub u16);

/// Traffic source id (client address / bot id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId(pub u32);

/// One inbound HTTP request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id.
    pub id: RequestId,
    /// Target URL (service type).
    pub url: UrlId,
    /// Originating client.
    pub source: SourceId,
    /// When the request hit the load balancer.
    pub arrival: SimTime,
    /// Expected compute demand at nominal frequency, giga-cycles.
    pub work_gcycles: f64,
    /// CPU-boundedness in `[0, 1]`: service rate scales as
    /// `(1 − beta) + beta · f/f_nominal`.
    pub beta: f64,
    /// Power intensity this request exerts while in service, `[0, 1]`.
    pub intensity: f64,
    /// DVFS power sensitivity of this request's dynamic power, `[0, 1]`.
    pub gamma: f64,
    /// SLA deadline for an on-time completion.
    pub deadline: SimDuration,
    /// Client abandonment timeout (≥ deadline).
    pub timeout: SimDuration,
    /// Ground-truth attack label (evaluation only).
    pub is_attack: bool,
    /// Delivery attempt, starting at 0. The NLB retry path increments it
    /// on each re-dispatch of the *same* request (same id), bounded by
    /// the retry policy's attempt budget.
    #[serde(default)]
    pub attempt: u8,
}

impl Request {
    /// The request's speed factor at relative frequency `rel_f ∈ (0, 1]`:
    /// CPU-bound requests slow proportionally; memory/disk-bound ones
    /// barely notice.
    #[inline]
    pub fn rate_factor(&self, rel_f: f64) -> f64 {
        debug_assert!(rel_f > 0.0 && rel_f <= 1.0 + 1e-9);
        (1.0 - self.beta) + self.beta * rel_f
    }

    /// Nominal service time on one core at `core_ghz` gigahertz and full
    /// frequency.
    pub fn nominal_service_time(&self, core_ghz: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.work_gcycles / core_ghz)
    }

    /// Whether a response completed after `sojourn` met the deadline.
    pub fn on_time(&self, sojourn: SimDuration) -> bool {
        sojourn <= self.deadline
    }

    /// Whether the client would have abandoned after `sojourn`.
    pub fn abandoned(&self, sojourn: SimDuration) -> bool {
        sojourn > self.timeout
    }
}

/// Builder for tests and workload generators.
#[derive(Debug, Clone)]
pub struct RequestBuilder {
    next_id: u64,
}

impl Default for RequestBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestBuilder {
    /// Builder issuing ids from 0.
    pub fn new() -> Self {
        RequestBuilder { next_id: 0 }
    }

    /// Builder issuing ids from `base` — gives each traffic source a
    /// disjoint id space (e.g. `source_index << 40`).
    pub fn starting_at(base: u64) -> Self {
        RequestBuilder { next_id: base }
    }

    /// Number of requests issued so far.
    pub fn issued(&self) -> u64 {
        self.next_id
    }

    /// Construct a request with the given fields and a fresh id.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        &mut self,
        url: UrlId,
        source: SourceId,
        arrival: SimTime,
        work_gcycles: f64,
        beta: f64,
        intensity: f64,
        gamma: f64,
        is_attack: bool,
    ) -> Request {
        assert!(work_gcycles > 0.0, "work must be positive");
        assert!((0.0..=1.0).contains(&beta), "beta out of range");
        assert!((0.0..=1.0).contains(&intensity), "intensity out of range");
        assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
        let id = RequestId(self.next_id);
        self.next_id += 1;
        Request {
            id,
            url,
            source,
            arrival,
            work_gcycles,
            beta,
            intensity,
            gamma,
            deadline: SimDuration::from_millis(100),
            timeout: SimDuration::from_secs(4),
            is_attack,
            attempt: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(beta: f64) -> Request {
        RequestBuilder::new().build(
            UrlId(1),
            SourceId(9),
            SimTime::from_secs(1),
            2.4,
            beta,
            0.8,
            0.9,
            false,
        )
    }

    #[test]
    fn ids_are_sequential() {
        let mut b = RequestBuilder::new();
        let r0 = b.build(UrlId(0), SourceId(0), SimTime::ZERO, 1.0, 0.5, 0.5, 0.5, false);
        let r1 = b.build(UrlId(0), SourceId(0), SimTime::ZERO, 1.0, 0.5, 0.5, 0.5, false);
        assert_eq!(r0.id, RequestId(0));
        assert_eq!(r1.id, RequestId(1));
        assert_eq!(b.issued(), 2);
    }

    #[test]
    fn rate_factor_extremes() {
        // Fully CPU-bound: speed tracks frequency exactly.
        let cpu = req(1.0);
        assert!((cpu.rate_factor(0.5) - 0.5).abs() < 1e-12);
        // Fully memory-bound: immune to DVFS.
        let mem = req(0.0);
        assert!((mem.rate_factor(0.5) - 1.0).abs() < 1e-12);
        // Halfway.
        let mid = req(0.5);
        assert!((mid.rate_factor(0.5) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn nominal_service_time() {
        let r = req(1.0); // 2.4 G-cycles at 2.4 GHz = 1 s
        assert_eq!(r.nominal_service_time(2.4), SimDuration::from_secs(1));
    }

    #[test]
    fn sla_predicates() {
        let r = req(1.0);
        assert!(r.on_time(SimDuration::from_millis(100)));
        assert!(!r.on_time(SimDuration::from_millis(101)));
        assert!(!r.abandoned(SimDuration::from_secs(4)));
        assert!(r.abandoned(SimDuration::from_millis(4001)));
    }

    #[test]
    #[should_panic(expected = "beta out of range")]
    fn builder_validates() {
        RequestBuilder::new().build(
            UrlId(0),
            SourceId(0),
            SimTime::ZERO,
            1.0,
            1.5,
            0.5,
            0.5,
            false,
        );
    }
}
