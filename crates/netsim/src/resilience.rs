//! End-to-end request resilience: bounded retry with exponential
//! backoff + jitter, and per-pool circuit breakers.
//!
//! The paper's headline failure mode is a breaker trip that takes a
//! whole pool of servers offline mid-flood. Without a failure-handling
//! path the NLB keeps forwarding into the dead pool and the load is
//! silently dropped; with one, a tripped rack degrades tail latency
//! instead of goodput. This module holds the policy pieces, all of them
//! deterministic:
//!
//! * [`RetryConfig`] — the serde-facing knobs: attempt budget, client
//!   timeout (failure-detection delay for silently lost requests),
//!   exponential backoff base/cap, jitter fraction, and the circuit
//!   breaker's failure threshold + cooldown.
//! * [`CircuitBreaker`] — the classic closed → open → half-open state
//!   machine. Open short-circuits dispatch into a failing pool; after
//!   the cooldown a half-open probe decides between re-close and
//!   re-open.
//! * [`PoolBreakers`] — one breaker per backend pool (the sharded
//!   engine aligns pools with shard node ranges, i.e. "racks").
//!
//! Jitter draws come from a dedicated RNG stream
//! ([`simcore::rng::streams::RETRY`]) handed in by the engine, so
//! enabling retries never perturbs arrivals, faults, or the attacker.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};
use simcore::rng::SimRng;
use simcore::{SimDuration, SimTime};

/// Retry / circuit-breaker policy knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct RetryConfig {
    /// Total delivery attempts per request, including the first
    /// (≥ 1; `1` disables retries — failures are immediately final).
    pub max_attempts: u8,
    /// Client-side failure-detection delay: how long after a silent
    /// loss (crash, black-holed dispatch) the client notices and the
    /// retry clock starts (> 0).
    pub timeout: SimDuration,
    /// First backoff interval; doubles per attempt (> 0).
    pub backoff_base: SimDuration,
    /// Backoff ceiling (≥ `backoff_base`).
    pub backoff_cap: SimDuration,
    /// Jitter fraction in `[0, 1]`: the backoff is scaled by
    /// `1 − jitter + jitter·u` with `u` uniform in `[0, 1)`. Zero means
    /// fully deterministic backoff (no RNG draw at all).
    pub jitter: f64,
    /// How long an open breaker blocks a pool before a half-open probe;
    /// `ZERO` disables circuit breaking entirely.
    pub breaker_cooldown: SimDuration,
    /// Consecutive dispatch failures that open a pool's breaker (≥ 1).
    pub breaker_failure_threshold: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 3,
            timeout: SimDuration::from_millis(250),
            backoff_base: SimDuration::from_millis(100),
            backoff_cap: SimDuration::from_secs(2),
            jitter: 0.5,
            breaker_cooldown: SimDuration::from_secs(10),
            breaker_failure_threshold: 8,
        }
    }
}

impl RetryConfig {
    /// Check every knob, returning a typed error naming the field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_attempts < 1 {
            return Err(ConfigError::Parameter {
                component: "RetryConfig",
                field: "max_attempts",
                value: self.max_attempts as f64,
            });
        }
        if self.timeout <= SimDuration::ZERO {
            return Err(ConfigError::Parameter {
                component: "RetryConfig",
                field: "timeout",
                value: self.timeout.as_secs_f64(),
            });
        }
        if self.backoff_base <= SimDuration::ZERO {
            return Err(ConfigError::Parameter {
                component: "RetryConfig",
                field: "backoff_base",
                value: self.backoff_base.as_secs_f64(),
            });
        }
        if self.backoff_cap < self.backoff_base {
            return Err(ConfigError::Parameter {
                component: "RetryConfig",
                field: "backoff_cap",
                value: self.backoff_cap.as_secs_f64(),
            });
        }
        if !(0.0..=1.0).contains(&self.jitter) || !self.jitter.is_finite() {
            return Err(ConfigError::Parameter {
                component: "RetryConfig",
                field: "jitter",
                value: self.jitter,
            });
        }
        if self.breaker_failure_threshold < 1 {
            return Err(ConfigError::Parameter {
                component: "RetryConfig",
                field: "breaker_failure_threshold",
                value: self.breaker_failure_threshold as f64,
            });
        }
        Ok(())
    }

    /// True when the circuit breaker is configured on.
    pub fn breaker_enabled(&self) -> bool {
        self.breaker_cooldown > SimDuration::ZERO
    }

    /// Backoff before re-dispatching a request whose attempt number
    /// `failed_attempt` (0-based, i.e. [`crate::request::Request::attempt`])
    /// just failed: `min(base · 2^failed_attempt, cap)` scaled by the
    /// jitter factor. With `jitter == 0` no randomness is consumed.
    pub fn backoff(&self, failed_attempt: u8, rng: &mut SimRng) -> SimDuration {
        let base = self.backoff_base.as_secs_f64();
        let cap = self.backoff_cap.as_secs_f64();
        let raw = (base * 2f64.powi(failed_attempt as i32)).min(cap);
        let scale = if self.jitter > 0.0 {
            1.0 - self.jitter + self.jitter * rng.unit_f64()
        } else {
            1.0
        };
        SimDuration::from_secs_f64(raw * scale)
    }
}

/// Circuit breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: dispatch into the pool is blocked until the instant.
    Open {
        /// When the cooldown elapses and a half-open probe is allowed.
        until: SimTime,
    },
    /// Cooldown elapsed: requests flow as probes; the first failure
    /// re-opens, the first success re-closes.
    HalfOpen,
}

/// One pool's circuit breaker: closed → open on consecutive failures,
/// half-open probe after the cooldown, re-close on probe success.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: CircuitState,
    cooldown: SimDuration,
    threshold: u32,
    consecutive_failures: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// Breaker opening after `threshold` consecutive failures, blocking
    /// for `cooldown` before probing.
    pub fn new(threshold: u32, cooldown: SimDuration) -> Self {
        assert!(threshold >= 1, "breaker threshold must be >= 1");
        CircuitBreaker {
            state: CircuitState::Closed,
            cooldown,
            threshold,
            consecutive_failures: 0,
            trips: 0,
        }
    }

    /// Current state (the open → half-open edge is taken lazily by
    /// [`Self::allows`]).
    pub fn state(&self) -> CircuitState {
        self.state
    }

    /// Times this breaker opened.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Record a dispatch failure against the pool.
    pub fn on_failure(&mut self, now: SimTime) {
        match self.state {
            CircuitState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.open(now);
                }
            }
            CircuitState::HalfOpen => self.open(now),
            CircuitState::Open { .. } => {}
        }
    }

    /// Record a successful completion from the pool.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == CircuitState::HalfOpen {
            self.state = CircuitState::Closed;
        }
    }

    /// Whether dispatch into the pool is allowed at `now`. An open
    /// breaker past its cooldown transitions to half-open and allows
    /// the probe through.
    pub fn allows(&mut self, now: SimTime) -> bool {
        match self.state {
            CircuitState::Closed | CircuitState::HalfOpen => true,
            CircuitState::Open { until } => {
                if now >= until {
                    self.state = CircuitState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Non-mutating peek used when scanning for an alternate pool: true
    /// when [`Self::allows`] would return false.
    pub fn blocked(&self, now: SimTime) -> bool {
        matches!(self.state, CircuitState::Open { until } if now < until)
    }

    fn open(&mut self, now: SimTime) {
        self.state = CircuitState::Open {
            until: now + self.cooldown,
        };
        self.consecutive_failures = 0;
        self.trips += 1;
    }
}

/// One circuit breaker per backend pool.
#[derive(Debug, Clone)]
pub struct PoolBreakers {
    breakers: Vec<CircuitBreaker>,
}

impl PoolBreakers {
    /// `n_pools` breakers sharing one threshold/cooldown.
    pub fn new(n_pools: usize, threshold: u32, cooldown: SimDuration) -> Self {
        PoolBreakers {
            breakers: (0..n_pools)
                .map(|_| CircuitBreaker::new(threshold, cooldown))
                .collect(),
        }
    }

    /// Number of pools.
    pub fn len(&self) -> usize {
        self.breakers.len()
    }

    /// True when there are no pools.
    pub fn is_empty(&self) -> bool {
        self.breakers.is_empty()
    }

    /// Record a dispatch failure against `pool`.
    pub fn on_failure(&mut self, pool: usize, now: SimTime) {
        self.breakers[pool].on_failure(now);
    }

    /// Record a successful completion from `pool`.
    pub fn on_success(&mut self, pool: usize) {
        self.breakers[pool].on_success();
    }

    /// Whether dispatch into `pool` is allowed (may take the
    /// open → half-open edge).
    pub fn allows(&mut self, pool: usize, now: SimTime) -> bool {
        self.breakers[pool].allows(now)
    }

    /// Non-mutating block check for alternate-pool scans.
    pub fn blocked(&self, pool: usize, now: SimTime) -> bool {
        self.breakers[pool].blocked(now)
    }

    /// A pool's breaker, for inspection.
    pub fn breaker(&self, pool: usize) -> &CircuitBreaker {
        &self.breakers[pool]
    }

    /// Total trips across all pools.
    pub fn trips(&self) -> u64 {
        self.breakers.iter().map(|b| b.trips()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn default_config_validates() {
        assert!(RetryConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_names_the_offending_field() {
        let cases: Vec<(RetryConfig, &str)> = vec![
            (
                RetryConfig {
                    max_attempts: 0,
                    ..RetryConfig::default()
                },
                "max_attempts",
            ),
            (
                RetryConfig {
                    timeout: SimDuration::ZERO,
                    ..RetryConfig::default()
                },
                "timeout",
            ),
            (
                RetryConfig {
                    backoff_base: SimDuration::ZERO,
                    ..RetryConfig::default()
                },
                "backoff_base",
            ),
            (
                RetryConfig {
                    backoff_base: SimDuration::from_secs(5),
                    backoff_cap: SimDuration::from_secs(1),
                    ..RetryConfig::default()
                },
                "backoff_cap",
            ),
            (
                RetryConfig {
                    jitter: 1.5,
                    ..RetryConfig::default()
                },
                "jitter",
            ),
            (
                RetryConfig {
                    breaker_failure_threshold: 0,
                    ..RetryConfig::default()
                },
                "breaker_failure_threshold",
            ),
        ];
        for (cfg, field) in cases {
            let err = cfg.validate().unwrap_err();
            let msg = format!("{err}");
            assert!(
                msg.contains("RetryConfig") && msg.contains(field),
                "expected message naming {field}, got: {msg}"
            );
        }
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let cfg = RetryConfig {
            backoff_base: SimDuration::from_millis(100),
            backoff_cap: SimDuration::from_millis(350),
            jitter: 0.0,
            ..RetryConfig::default()
        };
        let mut rng = SimRng::new(1);
        assert_eq!(cfg.backoff(0, &mut rng), SimDuration::from_millis(100));
        assert_eq!(cfg.backoff(1, &mut rng), SimDuration::from_millis(200));
        assert_eq!(cfg.backoff(2, &mut rng), SimDuration::from_millis(350));
        assert_eq!(cfg.backoff(6, &mut rng), SimDuration::from_millis(350));
    }

    #[test]
    fn zero_jitter_consumes_no_randomness() {
        let cfg = RetryConfig {
            jitter: 0.0,
            ..RetryConfig::default()
        };
        let mut rng = SimRng::new(9);
        let reference = SimRng::new(9);
        let _ = cfg.backoff(0, &mut rng);
        assert_eq!(rng, reference, "jitter-free backoff drew from the rng");
    }

    #[test]
    fn jitter_bounds_the_scale() {
        let cfg = RetryConfig {
            backoff_base: SimDuration::from_secs(1),
            backoff_cap: SimDuration::from_secs(1),
            jitter: 0.5,
            ..RetryConfig::default()
        };
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let b = cfg.backoff(0, &mut rng).as_secs_f64();
            assert!((0.5..1.0).contains(&b), "backoff {b} outside [0.5, 1.0)");
        }
    }

    #[test]
    fn breaker_opens_on_threshold_and_probes_after_cooldown() {
        let mut b = CircuitBreaker::new(3, SimDuration::from_secs(10));
        assert_eq!(b.state(), CircuitState::Closed);
        b.on_failure(s(1));
        b.on_failure(s(2));
        assert!(b.allows(s(2)), "below threshold stays closed");
        b.on_failure(s(3));
        assert_eq!(b.state(), CircuitState::Open { until: s(13) });
        assert_eq!(b.trips(), 1);
        assert!(!b.allows(s(5)));
        assert!(b.blocked(s(5)));
        // Cooldown elapsed: half-open, probe allowed.
        assert!(b.allows(s(13)));
        assert_eq!(b.state(), CircuitState::HalfOpen);
        // Probe succeeds: re-close.
        b.on_success();
        assert_eq!(b.state(), CircuitState::Closed);
        assert!(b.allows(s(14)));
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_secs(5));
        b.on_failure(s(0));
        assert_eq!(b.state(), CircuitState::Open { until: s(5) });
        assert!(b.allows(s(5)));
        b.on_failure(s(6));
        assert_eq!(b.state(), CircuitState::Open { until: s(11) });
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(3, SimDuration::from_secs(5));
        b.on_failure(s(0));
        b.on_failure(s(1));
        b.on_success();
        b.on_failure(s(2));
        b.on_failure(s(3));
        assert_eq!(b.state(), CircuitState::Closed, "streak was reset");
        b.on_failure(s(4));
        assert!(matches!(b.state(), CircuitState::Open { .. }));
    }

    #[test]
    fn failures_while_open_are_ignored() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_secs(10));
        b.on_failure(s(0));
        b.on_failure(s(1));
        b.on_failure(s(2));
        assert_eq!(b.trips(), 1, "in-flight failures must not extend the outage");
        assert_eq!(b.state(), CircuitState::Open { until: s(10) });
    }

    #[test]
    fn pool_breakers_are_independent() {
        let mut pools = PoolBreakers::new(3, 1, SimDuration::from_secs(10));
        assert_eq!(pools.len(), 3);
        pools.on_failure(1, s(0));
        assert!(pools.allows(0, s(1)));
        assert!(!pools.allows(1, s(1)));
        assert!(pools.blocked(1, s(1)));
        assert!(pools.allows(2, s(1)));
        assert_eq!(pools.trips(), 1);
        assert_eq!(pools.breaker(1).trips(), 1);
    }
}
