//! Typed configuration errors for netsim components.
//!
//! Constructors taking user-supplied topology (backend counts,
//! forwarding pools) return these instead of panicking, so experiment
//! configs assembled from files get a diagnosable error. Internal
//! invariants remain `assert!`s naming the invariant.

use std::fmt;

/// Why a netsim component rejected its configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The NLB needs at least one backend.
    NoBackends,
    /// A UrlSplit forwarding pool was empty.
    EmptyPool {
        /// Which pool: `"suspect"` or `"innocent"`.
        pool: &'static str,
    },
    /// A pool referenced a backend index outside `0..backends`.
    PoolIndexOutOfRange {
        /// Offending backend index.
        index: usize,
        /// Number of backends.
        backends: usize,
    },
    /// The suspect and innocent pools share a backend.
    OverlappingPools {
        /// A backend present in both pools.
        index: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoBackends => write!(f, "NLB needs at least one backend"),
            ConfigError::EmptyPool { pool } => {
                write!(f, "{pool} pool must be non-empty")
            }
            ConfigError::PoolIndexOutOfRange { index, backends } => {
                write!(
                    f,
                    "pool index {index} out of range for {backends} backends"
                )
            }
            ConfigError::OverlappingPools { index } => {
                write!(f, "pools must be disjoint; backend {index} is in both")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert!(format!("{}", ConfigError::NoBackends).contains("backend"));
        let e = ConfigError::EmptyPool { pool: "suspect" };
        assert!(format!("{e}").contains("suspect"));
        let e = ConfigError::PoolIndexOutOfRange {
            index: 5,
            backends: 2,
        };
        assert!(format!("{e}").contains('5'));
        let e = ConfigError::OverlappingPools { index: 1 };
        assert!(format!("{e}").contains("disjoint"));
    }
}
