//! Typed configuration errors for netsim components.
//!
//! Constructors taking user-supplied topology (backend counts,
//! forwarding pools) return these instead of panicking, so experiment
//! configs assembled from files get a diagnosable error. Internal
//! invariants remain `assert!`s naming the invariant.

use std::fmt;

/// Why a netsim component rejected its configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// The NLB needs at least one backend.
    NoBackends,
    /// A suspicion threshold outside `[0, 1]`.
    Threshold {
        /// Offending value.
        value: f64,
    },
    /// A profiled power intensity outside `[0, 1]`.
    Intensity {
        /// Offending value.
        value: f64,
    },
    /// A UrlSplit forwarding pool was empty.
    EmptyPool {
        /// Which pool: `"suspect"` or `"innocent"`.
        pool: &'static str,
    },
    /// A pool referenced a backend index outside `0..backends`.
    PoolIndexOutOfRange {
        /// Offending backend index.
        index: usize,
        /// Number of backends.
        backends: usize,
    },
    /// The suspect and innocent pools share a backend.
    OverlappingPools {
        /// A backend present in both pools.
        index: usize,
    },
    /// A rack placement mapped a backend to a rack outside `0..racks`.
    RackOutOfRange {
        /// Offending backend index.
        backend: usize,
        /// The rack it was assigned.
        rack: usize,
        /// Number of racks in the placement.
        racks: usize,
    },
    /// A component constructor parameter out of range.
    Parameter {
        /// Component name, e.g. `"TokenBucket"`.
        component: &'static str,
        /// Field name, e.g. `"rate"`.
        field: &'static str,
        /// Offending value (integer fields are reported as floats).
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoBackends => write!(f, "NLB needs at least one backend"),
            ConfigError::Threshold { value } => {
                write!(f, "suspicion threshold {value} outside [0, 1]")
            }
            ConfigError::Intensity { value } => {
                write!(f, "profiled intensity {value} outside [0, 1]")
            }
            ConfigError::EmptyPool { pool } => {
                write!(f, "{pool} pool must be non-empty")
            }
            ConfigError::PoolIndexOutOfRange { index, backends } => {
                write!(
                    f,
                    "pool index {index} out of range for {backends} backends"
                )
            }
            ConfigError::OverlappingPools { index } => {
                write!(f, "pools must be disjoint; backend {index} is in both")
            }
            ConfigError::RackOutOfRange {
                backend,
                rack,
                racks,
            } => {
                write!(
                    f,
                    "backend {backend} placed in rack {rack}, outside 0..{racks}"
                )
            }
            ConfigError::Parameter {
                component,
                field,
                value,
            } => {
                write!(f, "{component}: {field}={value} out of range")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert!(format!("{}", ConfigError::NoBackends).contains("backend"));
        let e = ConfigError::EmptyPool { pool: "suspect" };
        assert!(format!("{e}").contains("suspect"));
        let e = ConfigError::PoolIndexOutOfRange {
            index: 5,
            backends: 2,
        };
        assert!(format!("{e}").contains('5'));
        let e = ConfigError::OverlappingPools { index: 1 };
        assert!(format!("{e}").contains("disjoint"));
        let e = ConfigError::Threshold { value: 1.5 };
        assert!(format!("{e}").contains("1.5"));
        let e = ConfigError::Intensity { value: -0.2 };
        assert!(format!("{e}").contains("-0.2"));
        let e = ConfigError::Parameter {
            component: "TokenBucket",
            field: "rate",
            value: 0.0,
        };
        let msg = format!("{e}");
        assert!(msg.contains("TokenBucket") && msg.contains("rate"));
    }
}
