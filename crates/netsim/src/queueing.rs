//! Multi-core processor-sharing server queue with DVFS-dependent speed,
//! in the **virtual-time** formulation.
//!
//! Each server is modeled as `c` cores shared equally among all in-flight
//! requests (the classic egalitarian processor-sharing model of a
//! threaded HTTP server). A request's instantaneous service rate is
//!
//! ```text
//! rate_i = core_ghz · ((1 − βᵢ) + βᵢ · rel_f) · min(1, c / n)    [G-cycles/s]
//! ```
//!
//! so lowering the DVFS state (`rel_f`) slows CPU-bound requests
//! proportionally while memory-bound ones barely notice — the mechanism
//! behind every latency figure in the paper.
//!
//! ## Virtual time
//!
//! Sustained floods push thousands of requests in flight per node, so the
//! queue cannot afford per-request work on every event. Instead of
//! tracking each request's remaining work explicitly (O(n) per advance),
//! the queue maintains one *shared-cycle accumulator*
//!
//! ```text
//! S(t) = ∫ core_ghz · share(t) dt        share(t) = min(1, c / n(t))
//! ```
//!
//! — the G-cycles a hypothetical β-insensitive request would have
//! received so far. Request *i* consumes real work at the constant slope
//! `rᵢ = rate_factor(βᵢ, rel_f)` per unit of `S`, so its finish point
//!
//! ```text
//! S_finish,i = S_admit + work_i / rᵢ
//! ```
//!
//! is **fixed at admission** and is independent of later occupancy
//! changes: pushes and completions bend the *clock* `S(t)` (the share
//! changes) but never the finish *ordinates*, so the completion order is
//! invariant and lives in a min-heap keyed by `S_finish`. Consequences:
//!
//! * [`PsServer::advance`] is O(1) — bump `S`;
//! * [`PsServer::next_completion`] is a heap peek (amortizing out lazily
//!   deleted entries of completed requests);
//! * [`PsServer::try_complete`] is an O(1) id lookup plus an O(log n)
//!   lazy heap deletion;
//! * only [`PsServer::set_rel_freq`] changes the per-request slopes, and
//!   it rescales every finish point and rebuilds the heap in O(n) — DVFS
//!   transitions are control-slot-rate events, not per-request ones.
//!
//! The previous direct-integration implementation is preserved verbatim
//! as [`reference::ReferencePsServer`] and the two are proven equivalent
//! (µs-identical completion schedules) by differential property tests
//! below and benchmarked against each other in `dope-bench`.
//!
//! ## Event protocol
//!
//! The queue advances lazily: every mutating call first integrates the
//! shared-cycle accumulator over the elapsed time. Completion times
//! depend on occupancy, so any state change invalidates
//! previously-predicted ETAs; the queue exposes an [`PsServer::epoch`]
//! counter that bumps on every state change. The owning simulation
//! schedules one completion event per server carrying the epoch, and
//! discards stale events on delivery.

use crate::error::ConfigError;
use crate::request::{Request, RequestId};
use simcore::fxhash::FxHashMap;
use simcore::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Shared parameter validation for the PS servers (real and reference).
fn check_server_params(
    component: &'static str,
    cores: usize,
    core_ghz: f64,
    max_inflight: usize,
) -> Result<(), ConfigError> {
    if cores < 1 {
        return Err(ConfigError::Parameter {
            component,
            field: "cores",
            value: cores as f64,
        });
    }
    if core_ghz <= 0.0 || !core_ghz.is_finite() {
        return Err(ConfigError::Parameter {
            component,
            field: "core_ghz",
            value: core_ghz,
        });
    }
    if max_inflight < 1 {
        return Err(ConfigError::Parameter {
            component,
            field: "max_inflight",
            value: max_inflight as f64,
        });
    }
    Ok(())
}

/// Round an ETA in seconds up to the next microsecond tick, snapping to
/// the nearest tick first: the virtual-time accumulator carries ~1 ulp of
/// float noise, which must not push an exactly-on-tick ETA onto the
/// following tick (the reference integrator would say the earlier one).
/// The 1 ns snap window is ~6 orders above ulp noise and ~3 below the
/// queue's 2 µs completion tolerance.
#[inline]
pub(crate) fn eta_to_micros(eta_s: f64) -> u64 {
    let eta_us = eta_s * 1e6;
    let nearest = eta_us.round();
    if (eta_us - nearest).abs() < 1e-3 {
        nearest as u64
    } else {
        eta_us.ceil() as u64
    }
}

/// Result of offering a request to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Admitted into service.
    Accepted,
    /// Rejected: the accept queue is full (overload collapse).
    Rejected,
}

#[derive(Debug, Clone)]
struct InFlight {
    req: Request,
    /// Value of the shared-cycle accumulator at which this request's
    /// work is exhausted. Fixed between frequency changes.
    finish_cycles: f64,
    /// Admission sequence number — deterministic tie-break for equal
    /// finish points.
    seq: u64,
}

/// Completion-heap key: finish point first, admission order second so
/// exactly-tied finish points resolve deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FinishKey {
    finish_cycles: f64,
    seq: u64,
    id: RequestId,
}

impl Eq for FinishKey {}

impl PartialOrd for FinishKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FinishKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.finish_cycles
            .total_cmp(&other.finish_cycles)
            .then(self.seq.cmp(&other.seq))
    }
}

/// A processor-sharing multi-core server queue (virtual-time form).
#[derive(Debug, Clone)]
pub struct PsServer {
    cores: usize,
    core_ghz: f64,
    rel_freq: f64,
    max_inflight: usize,
    /// Resident requests. Insertion + `swap_remove` discipline — the
    /// iteration order (and therefore every order-sensitive float
    /// aggregate like [`PsServer::load_character`]) matches the
    /// reference implementation exactly.
    inflight: Vec<InFlight>,
    /// Request id → position in `inflight`.
    index: FxHashMap<RequestId, usize>,
    /// Min-heap of finish points. Entries for departed requests are
    /// deleted lazily when they surface at the top.
    completions: BinaryHeap<Reverse<FinishKey>>,
    /// The shared-cycle accumulator `S(t)`.
    shared_cycles: f64,
    next_seq: u64,
    last_advance: SimTime,
    epoch: u64,
    completed: u64,
    rejected: u64,
}

impl PsServer {
    /// A server with `cores` cores at `core_ghz` nominal, admitting at
    /// most `max_inflight` concurrent requests. Panics on out-of-range
    /// parameters; use [`PsServer::try_new`] to handle them as errors.
    pub fn new(start: SimTime, cores: usize, core_ghz: f64, max_inflight: usize) -> Self {
        Self::try_new(start, cores, core_ghz, max_inflight).expect("invalid PsServer parameters")
    }

    /// Fallible constructor: rejects zero cores, a non-positive clock, or
    /// a zero admission limit with a typed [`ConfigError`].
    pub fn try_new(
        start: SimTime,
        cores: usize,
        core_ghz: f64,
        max_inflight: usize,
    ) -> Result<Self, ConfigError> {
        check_server_params("PsServer", cores, core_ghz, max_inflight)?;
        Ok(PsServer {
            cores,
            core_ghz,
            rel_freq: 1.0,
            max_inflight,
            inflight: Vec::new(),
            index: FxHashMap::default(),
            completions: BinaryHeap::new(),
            shared_cycles: 0.0,
            next_seq: 0,
            last_advance: start,
            epoch: 0,
            completed: 0,
            rejected: 0,
        })
    }

    /// Core count.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Requests currently in flight (queued + in service — PS does not
    /// distinguish).
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// True when idle.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// State-change epoch; bumps on push / completion / frequency change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Lifetime completions.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Lifetime rejections.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Current relative frequency.
    pub fn rel_freq(&self) -> f64 {
        self.rel_freq
    }

    /// Busy-core fraction in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        (self.inflight.len().min(self.cores)) as f64 / self.cores as f64
    }

    /// Power character of the resident mix as `(utilization, intensity,
    /// gamma)`. Intensity and gamma are averaged over the requests
    /// actually occupying core share (equal shares under PS). An idle
    /// server reports zeros.
    pub fn load_character(&self) -> (f64, f64, f64) {
        if self.inflight.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let n = self.inflight.len() as f64;
        let intensity = self.inflight.iter().map(|f| f.req.intensity).sum::<f64>() / n;
        let gamma = self.inflight.iter().map(|f| f.req.gamma).sum::<f64>() / n;
        (self.utilization(), intensity, gamma)
    }

    /// Mean CPU-boundedness of the resident mix (0 when idle) — what a
    /// power manager needs to price the performance cost of throttling.
    pub fn mean_beta(&self) -> f64 {
        if self.inflight.is_empty() {
            return 0.0;
        }
        self.inflight.iter().map(|f| f.req.beta).sum::<f64>() / self.inflight.len() as f64
    }

    /// Per-request core share under PS.
    #[inline]
    fn share(&self) -> f64 {
        if self.inflight.is_empty() {
            0.0
        } else {
            (self.cores as f64 / self.inflight.len() as f64).min(1.0)
        }
    }

    /// Remaining work of one in-flight entry, G-cycles. Clamped at zero:
    /// a request may sit (within µs rounding) past its finish point
    /// while its completion event is in flight.
    #[inline]
    fn remaining_of(&self, f: &InFlight) -> f64 {
        ((f.finish_cycles - self.shared_cycles) * f.req.rate_factor(self.rel_freq)).max(0.0)
    }

    /// Integrate the shared-cycle accumulator up to `now`. O(1).
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        if dt == 0.0 || self.inflight.is_empty() {
            return;
        }
        self.shared_cycles += self.core_ghz * dt * self.share();
    }

    /// Change the DVFS relative frequency at `now`. Frequency is the one
    /// event that alters per-request slopes, so every finish point is
    /// rescaled and the completion heap rebuilt — O(n), at control-slot
    /// rate rather than per-request rate.
    pub fn set_rel_freq(&mut self, now: SimTime, rel_f: f64) {
        assert!(rel_f > 0.0 && rel_f <= 1.0 + 1e-9, "rel_f={rel_f}");
        self.advance(now);
        if (rel_f - self.rel_freq).abs() <= 1e-12 {
            return;
        }
        let old = self.rel_freq;
        self.rel_freq = rel_f;
        self.epoch += 1;
        self.completions.clear();
        for f in &mut self.inflight {
            let remaining =
                ((f.finish_cycles - self.shared_cycles) * f.req.rate_factor(old)).max(0.0);
            f.finish_cycles = self.shared_cycles + remaining / f.req.rate_factor(rel_f);
            self.completions.push(Reverse(FinishKey {
                finish_cycles: f.finish_cycles,
                seq: f.seq,
                id: f.req.id,
            }));
        }
    }

    /// Offer a request at `now`. O(log n): the finish point is fixed here
    /// and never reordered by later occupancy changes.
    pub fn push(&mut self, now: SimTime, req: Request) -> PushOutcome {
        self.advance(now);
        if self.inflight.len() >= self.max_inflight {
            self.rejected += 1;
            return PushOutcome::Rejected;
        }
        let finish_cycles = self.shared_cycles + req.work_gcycles / req.rate_factor(self.rel_freq);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.completions.push(Reverse(FinishKey {
            finish_cycles,
            seq,
            id: req.id,
        }));
        self.index.insert(req.id, self.inflight.len());
        self.inflight.push(InFlight {
            req,
            finish_cycles,
            seq,
        });
        self.epoch += 1;
        PushOutcome::Accepted
    }

    /// Predict the next completion as `(eta, request_id)` given current
    /// state. Call [`PsServer::advance`] first. The ETA is rounded up to
    /// the next microsecond so the completion event never fires early.
    ///
    /// Takes `&mut self` to lazily discard heap entries of requests that
    /// already departed; amortized O(log n).
    pub fn next_completion(&mut self) -> Option<(SimTime, RequestId)> {
        let head = loop {
            let Reverse(key) = *self.completions.peek()?;
            if self.index.contains_key(&key.id) {
                break key;
            }
            self.completions.pop();
        };
        let idx = self.index[&head.id];
        let f = &self.inflight[idx];
        let rate = self.core_ghz * f.req.rate_factor(self.rel_freq) * self.share();
        debug_assert!(rate > 0.0);
        let eta_s = self.remaining_of(f) / rate;
        let micros = eta_to_micros(eta_s);
        Some((self.last_advance + SimDuration::from_micros(micros), head.id))
    }

    /// Attempt to complete request `id` at `now`. Returns the request and
    /// its sojourn time if its work is (within integration tolerance)
    /// done; `None` if the ETA was stale and work remains. O(1) lookup;
    /// the heap entry is removed lazily by a later
    /// [`PsServer::next_completion`].
    pub fn try_complete(&mut self, now: SimTime, id: RequestId) -> Option<(Request, SimDuration)> {
        self.advance(now);
        let &idx = self.index.get(&id)?;
        let f = &self.inflight[idx];
        // Forgive up to 2 µs of residual work: completion events are
        // scheduled at µs granularity rounded up, so residuals below one
        // tick of extra service are integration noise, not stale ETAs.
        let tol = self.core_ghz * f.req.rate_factor(self.rel_freq) * self.share() * 2e-6;
        if self.remaining_of(f) > tol {
            return None;
        }
        let f = self.inflight.swap_remove(idx);
        self.index.remove(&id);
        if idx < self.inflight.len() {
            self.index.insert(self.inflight[idx].req.id, idx);
        }
        self.epoch += 1;
        self.completed += 1;
        let sojourn = now.since(f.req.arrival);
        Some((f.req, sojourn))
    }

    /// Drain every in-flight request (used when a breaker trips and the
    /// node loses power), delivering each to `visit` in queue order.
    /// Allocation-free alternative to [`PsServer::drain`].
    pub fn drain_with(&mut self, now: SimTime, mut visit: impl FnMut(Request)) {
        self.advance(now);
        self.epoch += 1;
        self.completions.clear();
        self.index.clear();
        for f in self.inflight.drain(..) {
            visit(f.req);
        }
    }

    /// Drain every in-flight request into a fresh `Vec`. Convenience
    /// wrapper over [`PsServer::drain_with`] for tests and cold paths.
    pub fn drain(&mut self, now: SimTime) -> Vec<Request> {
        let mut out = Vec::with_capacity(self.inflight.len());
        self.drain_with(now, |req| out.push(req));
        out
    }

    /// Visit the id and sojourn of every in-flight request older than its
    /// client timeout (diagnostic; the simulation lets the server finish
    /// them — the work still burns power — but clients have abandoned).
    /// Allocation-free alternative to [`PsServer::overdue`].
    pub fn for_each_overdue(&self, now: SimTime, mut visit: impl FnMut(RequestId, SimDuration)) {
        for f in &self.inflight {
            if let Some(sojourn) = now.checked_since(f.req.arrival) {
                if f.req.abandoned(sojourn) {
                    visit(f.req.id, sojourn);
                }
            }
        }
    }

    /// Ids and sojourns of overdue in-flight requests, collected into a
    /// fresh `Vec`. Convenience wrapper over
    /// [`PsServer::for_each_overdue`] for tests and cold paths.
    pub fn overdue(&self, now: SimTime) -> Vec<(RequestId, SimDuration)> {
        let mut out = Vec::new();
        self.for_each_overdue(now, |id, sojourn| out.push((id, sojourn)));
        out
    }
}

/// The direct-integration processor-sharing queue the virtual-time
/// implementation replaced.
///
/// Kept as an executable specification: [`reference::ReferencePsServer`]
/// integrates
/// every in-flight request's remaining work on every event (O(n) per
/// advance, O(n) scans for prediction and completion), which is
/// unaffordable at flood-scale occupancy but trivially auditable against
/// the model in the paper. The differential property tests in this module
/// prove the two produce µs-identical completion schedules; the
/// `queueing_flood` benchmark in `dope-bench` measures the asymptotic
/// separation. Not part of the public simulator surface.
#[doc(hidden)]
pub mod reference {
    use super::PushOutcome;
    use crate::error::ConfigError;
    use crate::request::{Request, RequestId};
    use simcore::{SimDuration, SimTime};

    #[derive(Debug, Clone)]
    struct InFlight {
        req: Request,
        remaining_gcycles: f64,
    }

    /// Direct-integration processor-sharing queue (the pre-virtual-time
    /// implementation, verbatim).
    #[derive(Debug, Clone)]
    pub struct ReferencePsServer {
        cores: usize,
        core_ghz: f64,
        rel_freq: f64,
        max_inflight: usize,
        inflight: Vec<InFlight>,
        last_advance: SimTime,
        epoch: u64,
        completed: u64,
        rejected: u64,
    }

    impl ReferencePsServer {
        /// A server with `cores` cores at `core_ghz` nominal, admitting
        /// at most `max_inflight` concurrent requests. Panics on
        /// out-of-range parameters; use [`ReferencePsServer::try_new`].
        pub fn new(start: SimTime, cores: usize, core_ghz: f64, max_inflight: usize) -> Self {
            Self::try_new(start, cores, core_ghz, max_inflight)
                .expect("invalid ReferencePsServer parameters")
        }

        /// Fallible constructor mirroring [`super::PsServer::try_new`].
        pub fn try_new(
            start: SimTime,
            cores: usize,
            core_ghz: f64,
            max_inflight: usize,
        ) -> Result<Self, ConfigError> {
            super::check_server_params("ReferencePsServer", cores, core_ghz, max_inflight)?;
            Ok(ReferencePsServer {
                cores,
                core_ghz,
                rel_freq: 1.0,
                max_inflight,
                inflight: Vec::new(),
                last_advance: start,
                epoch: 0,
                completed: 0,
                rejected: 0,
            })
        }

        /// Requests currently in flight.
        pub fn len(&self) -> usize {
            self.inflight.len()
        }

        /// True when idle.
        pub fn is_empty(&self) -> bool {
            self.inflight.is_empty()
        }

        /// State-change epoch.
        pub fn epoch(&self) -> u64 {
            self.epoch
        }

        /// Lifetime completions.
        pub fn completed(&self) -> u64 {
            self.completed
        }

        /// Lifetime rejections.
        pub fn rejected(&self) -> u64 {
            self.rejected
        }

        /// Power character of the resident mix.
        pub fn load_character(&self) -> (f64, f64, f64) {
            if self.inflight.is_empty() {
                return (0.0, 0.0, 0.0);
            }
            let n = self.inflight.len() as f64;
            let intensity = self.inflight.iter().map(|f| f.req.intensity).sum::<f64>() / n;
            let gamma = self.inflight.iter().map(|f| f.req.gamma).sum::<f64>() / n;
            let u = (self.inflight.len().min(self.cores)) as f64 / self.cores as f64;
            (u, intensity, gamma)
        }

        /// Mean CPU-boundedness of the resident mix.
        pub fn mean_beta(&self) -> f64 {
            if self.inflight.is_empty() {
                return 0.0;
            }
            self.inflight.iter().map(|f| f.req.beta).sum::<f64>() / self.inflight.len() as f64
        }

        #[inline]
        fn share(&self) -> f64 {
            if self.inflight.is_empty() {
                0.0
            } else {
                (self.cores as f64 / self.inflight.len() as f64).min(1.0)
            }
        }

        #[inline]
        fn rate_of(&self, f: &InFlight) -> f64 {
            self.core_ghz * f.req.rate_factor(self.rel_freq) * self.share()
        }

        /// Integrate all in-flight work up to `now`. O(n).
        pub fn advance(&mut self, now: SimTime) {
            let dt = now.since(self.last_advance).as_secs_f64();
            self.last_advance = now;
            if dt == 0.0 || self.inflight.is_empty() {
                return;
            }
            let share = self.share();
            let base = self.core_ghz * dt * share;
            for f in &mut self.inflight {
                let done = base * f.req.rate_factor(self.rel_freq);
                f.remaining_gcycles = (f.remaining_gcycles - done).max(0.0);
            }
        }

        /// Change the DVFS relative frequency at `now`.
        pub fn set_rel_freq(&mut self, now: SimTime, rel_f: f64) {
            assert!(rel_f > 0.0 && rel_f <= 1.0 + 1e-9, "rel_f={rel_f}");
            self.advance(now);
            if (rel_f - self.rel_freq).abs() > 1e-12 {
                self.rel_freq = rel_f;
                self.epoch += 1;
            }
        }

        /// Offer a request at `now`.
        pub fn push(&mut self, now: SimTime, req: Request) -> PushOutcome {
            self.advance(now);
            if self.inflight.len() >= self.max_inflight {
                self.rejected += 1;
                return PushOutcome::Rejected;
            }
            self.inflight.push(InFlight {
                remaining_gcycles: req.work_gcycles,
                req,
            });
            self.epoch += 1;
            PushOutcome::Accepted
        }

        /// Predict the next completion by scanning every in-flight
        /// request. O(n).
        pub fn next_completion(&self) -> Option<(SimTime, RequestId)> {
            let mut best: Option<(f64, RequestId)> = None;
            for f in &self.inflight {
                let rate = self.rate_of(f);
                debug_assert!(rate > 0.0);
                let eta = f.remaining_gcycles / rate;
                if best.is_none_or(|(b, _)| eta < b) {
                    best = Some((eta, f.req.id));
                }
            }
            best.map(|(eta_s, id)| {
                let micros = super::eta_to_micros(eta_s);
                (self.last_advance + SimDuration::from_micros(micros), id)
            })
        }

        /// Attempt to complete request `id` at `now`. O(n) position scan.
        pub fn try_complete(
            &mut self,
            now: SimTime,
            id: RequestId,
        ) -> Option<(Request, SimDuration)> {
            self.advance(now);
            let idx = self.inflight.iter().position(|f| f.req.id == id)?;
            let tol = self.rate_of(&self.inflight[idx]) * 2e-6;
            if self.inflight[idx].remaining_gcycles > tol {
                return None;
            }
            let f = self.inflight.swap_remove(idx);
            self.epoch += 1;
            self.completed += 1;
            let sojourn = now.since(f.req.arrival);
            Some((f.req, sojourn))
        }

        /// Drain every in-flight request.
        pub fn drain(&mut self, now: SimTime) -> Vec<Request> {
            self.advance(now);
            self.epoch += 1;
            self.inflight.drain(..).map(|f| f.req).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferencePsServer;
    use super::*;
    use crate::request::{RequestBuilder, SourceId, UrlId};
    use proptest::prelude::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn server() -> PsServer {
        PsServer::new(SimTime::ZERO, 4, 2.4, 64)
    }

    fn mk(b: &mut RequestBuilder, arrival: SimTime, work: f64, beta: f64) -> Request {
        b.build(UrlId(0), SourceId(0), arrival, work, beta, 0.8, 0.9, false)
    }

    #[test]
    fn single_request_completes_at_nominal_time() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        let r = mk(&mut b, SimTime::ZERO, 2.4, 1.0); // 1 s of work
        assert_eq!(srv.push(SimTime::ZERO, r), PushOutcome::Accepted);
        let (eta, id) = srv.next_completion().unwrap();
        assert_eq!(eta, s(1));
        let (req, sojourn) = srv.try_complete(eta, id).unwrap();
        assert_eq!(req.id, id);
        assert_eq!(sojourn, SimDuration::from_secs(1));
        assert!(srv.is_empty());
        assert_eq!(srv.completed(), 1);
    }

    #[test]
    fn processor_sharing_slows_when_oversubscribed() {
        // 8 identical 1-second jobs on 4 cores: each gets a half core, so
        // all complete at t = 2 s.
        let mut srv = server();
        let mut b = RequestBuilder::new();
        for _ in 0..8 {
            srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        }
        let (eta, _) = srv.next_completion().unwrap();
        assert_eq!(eta, s(2));
    }

    #[test]
    fn underloaded_cores_not_shared() {
        // 2 jobs on 4 cores: each gets a full core.
        let mut srv = server();
        let mut b = RequestBuilder::new();
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        let (eta, _) = srv.next_completion().unwrap();
        assert_eq!(eta, s(1));
        assert_eq!(srv.utilization(), 0.5);
    }

    #[test]
    fn dvfs_slows_cpu_bound_work() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        srv.set_rel_freq(SimTime::ZERO, 0.5);
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        let (eta, _) = srv.next_completion().unwrap();
        assert_eq!(eta, s(2)); // half speed → double time
    }

    #[test]
    fn dvfs_spares_memory_bound_work() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        srv.set_rel_freq(SimTime::ZERO, 0.5);
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 0.0)); // β = 0
        let (eta, _) = srv.next_completion().unwrap();
        assert_eq!(eta, s(1)); // immune to frequency
    }

    #[test]
    fn midflight_frequency_change_stretches_remaining_work() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        // Half the work done at full speed, then throttle to half speed:
        // remaining 0.5 s of work takes 1 s.
        srv.set_rel_freq(SimTime::from_millis(500), 0.5);
        let (eta, _) = srv.next_completion().unwrap();
        assert_eq!(eta, SimTime::from_millis(1500));
    }

    #[test]
    fn epoch_bumps_on_state_changes() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        let e0 = srv.epoch();
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        assert!(srv.epoch() > e0);
        let e1 = srv.epoch();
        srv.set_rel_freq(s(0), 0.8);
        assert!(srv.epoch() > e1);
        let e2 = srv.epoch();
        // No-op frequency change does not bump.
        srv.set_rel_freq(s(0), 0.8);
        assert_eq!(srv.epoch(), e2);
    }

    #[test]
    fn stale_completion_rejected() {
        let mut b = RequestBuilder::new();
        // A second arrival must invalidate the first ETA; use a 1-core
        // server so the two jobs actually share.
        let mut srv = PsServer::new(SimTime::ZERO, 1, 2.4, 64);
        let r = mk(&mut b, SimTime::ZERO, 2.4, 1.0);
        let id = {
            let id = r.id;
            srv.push(SimTime::ZERO, r);
            id
        };
        let (eta, _) = srv.next_completion().unwrap();
        assert_eq!(eta, s(1));
        srv.push(SimTime::from_millis(500), mk(&mut b, SimTime::from_millis(500), 2.4, 1.0));
        // Old ETA is now stale: at t=1 s the first job has 0.25 s·2.4GHz of
        // work left (it ran shared 0.5..1.0).
        assert!(srv.try_complete(s(1), id).is_none());
        let (eta2, next_id) = srv.next_completion().unwrap();
        assert_eq!(next_id, id);
        assert_eq!(eta2, SimTime::from_millis(1500));
        assert!(srv.try_complete(eta2, id).is_some());
    }

    #[test]
    fn bounded_queue_rejects() {
        let mut srv = PsServer::new(SimTime::ZERO, 1, 2.4, 2);
        let mut b = RequestBuilder::new();
        assert_eq!(
            srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0)),
            PushOutcome::Accepted
        );
        assert_eq!(
            srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0)),
            PushOutcome::Accepted
        );
        assert_eq!(
            srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0)),
            PushOutcome::Rejected
        );
        assert_eq!(srv.rejected(), 1);
    }

    #[test]
    fn load_character_averages_mix() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        let r1 = b.build(UrlId(0), SourceId(0), SimTime::ZERO, 1.0, 1.0, 1.0, 1.0, false);
        let r2 = b.build(UrlId(1), SourceId(0), SimTime::ZERO, 1.0, 0.0, 0.5, 0.5, true);
        srv.push(SimTime::ZERO, r1);
        srv.push(SimTime::ZERO, r2);
        let (u, i, g) = srv.load_character();
        assert_eq!(u, 0.5);
        assert!((i - 0.75).abs() < 1e-12);
        assert!((g - 0.75).abs() < 1e-12);
        assert_eq!(server().load_character(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn drain_returns_everything() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        for _ in 0..5 {
            srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        }
        let drained = srv.drain(s(0));
        assert_eq!(drained.len(), 5);
        assert!(srv.is_empty());
        // The heap and index must be clean: a fresh push still works.
        srv.push(s(0), mk(&mut b, s(0), 2.4, 1.0));
        let (eta, id) = srv.next_completion().unwrap();
        assert_eq!(eta, s(1));
        assert!(srv.try_complete(eta, id).is_some());
    }

    #[test]
    fn drain_with_visits_in_queue_order() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        let mut pushed = Vec::new();
        for _ in 0..5 {
            let r = mk(&mut b, SimTime::ZERO, 2.4, 1.0);
            pushed.push(r.id);
            srv.push(SimTime::ZERO, r);
        }
        let mut seen = Vec::new();
        srv.drain_with(s(0), |req| seen.push(req.id));
        assert_eq!(seen, pushed);
        assert!(srv.is_empty());
    }

    #[test]
    fn overdue_detects_abandonment() {
        let mut srv = PsServer::new(SimTime::ZERO, 1, 2.4, 64);
        let mut b = RequestBuilder::new();
        // Huge job: still running at t = 10 s; client timeout is 4 s.
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 1000.0, 1.0));
        assert!(srv.overdue(s(4)).is_empty());
        let od = srv.overdue(s(5));
        assert_eq!(od.len(), 1);
        assert_eq!(od[0].1, SimDuration::from_secs(5));
        // The visitor path agrees.
        let mut count = 0;
        srv.for_each_overdue(s(5), |_, sojourn| {
            count += 1;
            assert_eq!(sojourn, SimDuration::from_secs(5));
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn pushes_never_reorder_pending_completions() {
        // The virtual-time invariant: a later, lighter arrival finishes
        // first without ever touching the earlier request's finish point.
        let mut srv = PsServer::new(SimTime::ZERO, 1, 2.4, 64);
        let mut b = RequestBuilder::new();
        let heavy = mk(&mut b, SimTime::ZERO, 2.4, 1.0);
        let heavy_id = heavy.id;
        srv.push(SimTime::ZERO, heavy);
        let light = mk(&mut b, SimTime::from_millis(100), 0.24, 1.0);
        let light_id = light.id;
        srv.push(SimTime::from_millis(100), light);
        // Light: 0.1 s of work at half share → done at 0.1 + 0.2 = 0.3 s.
        let (eta, id) = srv.next_completion().unwrap();
        assert_eq!(id, light_id);
        assert_eq!(eta, SimTime::from_millis(300));
        assert!(srv.try_complete(eta, light_id).is_some());
        // Heavy ran 0..0.1 alone and 0.1..0.3 shared: 0.8 s of its 1 s
        // remains, full share again → done at 1.1 s.
        let (eta, id) = srv.next_completion().unwrap();
        assert_eq!(id, heavy_id);
        assert_eq!(eta, SimTime::from_millis(1100));
        assert!(srv.try_complete(eta, heavy_id).is_some());
    }

    // ---- differential tests against the reference implementation ----

    /// One random schedule op.
    #[derive(Debug, Clone)]
    enum Op {
        /// Push a request with (work, β) after a µs gap.
        Push { gap_us: u64, work: f64, beta: f64 },
        /// Change frequency after a µs gap.
        SetFreq { gap_us: u64, rel_f: f64 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (0u64..200_000, 0.001f64..5.0, 0.0f64..1.0)
                .prop_map(|(gap_us, work, beta)| Op::Push { gap_us, work, beta }),
            1 => (0u64..500_000, prop::sample::select(vec![1.0, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5]))
                .prop_map(|(gap_us, rel_f)| Op::SetFreq { gap_us, rel_f }),
        ]
    }

    /// Fire every completion predicted at or before `horizon` on both
    /// queues, asserting µs-identical (ETA, id) pairs — the simulator's
    /// event discipline: completion events are delivered in time order,
    /// so a request never sits past its finish point while external
    /// events stream in.
    fn drain_due_lockstep(
        vt: &mut PsServer,
        rf: &mut ReferencePsServer,
        now: &mut SimTime,
        horizon: SimTime,
    ) -> Result<(), TestCaseError> {
        loop {
            vt.advance(*now);
            rf.advance(*now);
            let pv = vt.next_completion();
            let pr = rf.next_completion();
            match (pv, pr) {
                (None, None) => return Ok(()),
                (Some((tv, iv)), Some((tr, ir))) => {
                    prop_assert_eq!(tv, tr, "ETA mismatch at n={}", vt.len());
                    prop_assert_eq!(iv, ir, "completion-order mismatch at n={}", vt.len());
                    let t = tv.max(*now);
                    if t > horizon {
                        return Ok(());
                    }
                    let cv = vt.try_complete(t, iv);
                    let cr = rf.try_complete(t, ir);
                    prop_assert_eq!(cv.is_some(), cr.is_some(), "stale-ETA disagreement");
                    if let (Some((qv, sv)), Some((qr, sr))) = (&cv, &cr) {
                        prop_assert_eq!(qv.id, qr.id);
                        prop_assert_eq!(*sv, *sr, "sojourn mismatch");
                    }
                    *now = t;
                    if cv.is_none() {
                        continue;
                    }
                }
                (pv, pr) => {
                    return Err(TestCaseError::fail(format!(
                        "occupancy disagreement: vt={pv:?} ref={pr:?}"
                    )))
                }
            }
        }
    }

    proptest! {
        /// The virtual-time queue is observationally equivalent to the
        /// reference queue on random (work, β, arrival, freq-change)
        /// schedules: identical completion order, µs-identical ETAs and
        /// sojourns, identical epochs and completed/rejected counters,
        /// and bit-identical load aggregates.
        #[test]
        fn prop_virtual_time_equals_reference(
            cores in 1usize..9,
            cap in 4usize..48,
            ops in proptest::collection::vec(op_strategy(), 1..120),
        ) {
            let mut vt = PsServer::new(SimTime::ZERO, cores, 2.4, cap);
            let mut rf = ReferencePsServer::new(SimTime::ZERO, cores, 2.4, cap);
            let mut b = RequestBuilder::new();
            let mut now = SimTime::ZERO;
            for op in &ops {
                let gap = match *op {
                    Op::Push { gap_us, .. } => gap_us,
                    Op::SetFreq { gap_us, .. } => gap_us,
                };
                let at = now + SimDuration::from_micros(gap);
                drain_due_lockstep(&mut vt, &mut rf, &mut now, at)?;
                now = at.max(now);
                match *op {
                    Op::Push { work, beta, .. } => {
                        let r = mk(&mut b, now, work, beta);
                        prop_assert_eq!(vt.push(now, r.clone()), rf.push(now, r));
                    }
                    Op::SetFreq { rel_f, .. } => {
                        vt.set_rel_freq(now, rel_f);
                        rf.set_rel_freq(now, rel_f);
                    }
                }
                prop_assert_eq!(vt.epoch(), rf.epoch(), "epoch divergence");
                prop_assert_eq!(vt.len(), rf.len());
                prop_assert_eq!(vt.completed(), rf.completed());
                prop_assert_eq!(vt.rejected(), rf.rejected());
                prop_assert_eq!(vt.load_character(), rf.load_character());
                prop_assert_eq!(vt.mean_beta(), rf.mean_beta());
            }
            // Run both to empty, then compare drains of nothing…
            drain_due_lockstep(&mut vt, &mut rf, &mut now, SimTime::MAX)?;
            prop_assert_eq!(vt.len(), rf.len());
            prop_assert_eq!(vt.completed(), rf.completed());
        }

        /// Mid-schedule drains leave both queues in equivalent states —
        /// abandoned requests come back in identical order.
        #[test]
        fn prop_drain_matches_reference(
            cores in 1usize..5,
            works in proptest::collection::vec(0.01f64..5.0, 1..30),
            betas in proptest::collection::vec(0.0f64..1.0, 30),
            drain_after_us in 0u64..3_000_000,
        ) {
            let mut vt = PsServer::new(SimTime::ZERO, cores, 2.4, 64);
            let mut rf = ReferencePsServer::new(SimTime::ZERO, cores, 2.4, 64);
            let mut b = RequestBuilder::new();
            let mut now = SimTime::ZERO;
            for (i, &w) in works.iter().enumerate() {
                let at = now + SimDuration::from_micros(10_000 * i as u64);
                drain_due_lockstep(&mut vt, &mut rf, &mut now, at)?;
                now = at.max(now);
                let r = mk(&mut b, now, w, betas[i]);
                vt.push(now, r.clone());
                rf.push(now, r);
            }
            let t = now + SimDuration::from_micros(drain_after_us);
            drain_due_lockstep(&mut vt, &mut rf, &mut now, t)?;
            now = t.max(now);
            let mut dv = Vec::new();
            vt.drain_with(now, |req| dv.push(req.id));
            let dr: Vec<_> = rf.drain(now).into_iter().map(|r| r.id).collect();
            prop_assert_eq!(dv, dr, "drain order mismatch");
            prop_assert_eq!(vt.epoch(), rf.epoch());
        }

        /// Work conservation: total G-cycles completed never exceed
        /// capacity × time, and every accepted request eventually finishes.
        #[test]
        fn prop_all_complete_and_work_conserved(
            works in proptest::collection::vec(0.1f64..5.0, 1..20),
            betas in proptest::collection::vec(0.0f64..1.0, 20),
        ) {
            let mut srv = PsServer::new(SimTime::ZERO, 2, 2.4, 64);
            let mut b = RequestBuilder::new();
            let mut total_work = 0.0;
            for (i, &w) in works.iter().enumerate() {
                let r = b.build(UrlId(0), SourceId(0), SimTime::ZERO, w, betas[i], 0.5, 0.5, false);
                total_work += w;
                prop_assert_eq!(srv.push(SimTime::ZERO, r), PushOutcome::Accepted);
            }
            let mut finished = 0usize;
            let mut last = SimTime::ZERO;
            let mut guard = 0;
            while let Some((eta, id)) = srv.next_completion() {
                guard += 1;
                prop_assert!(guard < 10_000, "completion loop did not converge");
                prop_assert!(eta >= last);
                if srv.try_complete(eta, id).is_some() {
                    finished += 1;
                    last = eta;
                }
            }
            prop_assert_eq!(finished, works.len());
            // Lower bound on makespan: total work / max throughput.
            let min_secs = total_work / (2.0 * 2.4);
            prop_assert!(last.as_secs_f64() >= min_secs - 1e-3,
                "finished too fast: {} < {}", last.as_secs_f64(), min_secs);
        }
    }
}
