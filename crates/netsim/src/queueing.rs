//! Multi-core processor-sharing server queue with DVFS-dependent speed.
//!
//! Each server is modeled as `c` cores shared equally among all in-flight
//! requests (the classic egalitarian processor-sharing model of a
//! threaded HTTP server). A request's instantaneous service rate is
//!
//! ```text
//! rate_i = core_ghz · ((1 − βᵢ) + βᵢ · rel_f) · min(1, c / n)    [G-cycles/s]
//! ```
//!
//! so lowering the DVFS state (`rel_f`) slows CPU-bound requests
//! proportionally while memory-bound ones barely notice — the mechanism
//! behind every latency figure in the paper.
//!
//! ## Event protocol
//!
//! The queue advances lazily: every mutating call first integrates all
//! in-flight work over the elapsed time. Completion times depend on
//! occupancy, so any state change invalidates previously-predicted ETAs;
//! the queue exposes an [`PsServer::epoch`] counter that bumps on every
//! state change. The owning simulation schedules one completion event per
//! server carrying the epoch, and discards stale events on delivery.

use crate::request::{Request, RequestId};
use simcore::{SimDuration, SimTime};

/// Result of offering a request to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Admitted into service.
    Accepted,
    /// Rejected: the accept queue is full (overload collapse).
    Rejected,
}

#[derive(Debug, Clone)]
struct InFlight {
    req: Request,
    remaining_gcycles: f64,
}

/// A processor-sharing multi-core server queue.
#[derive(Debug, Clone)]
pub struct PsServer {
    cores: usize,
    core_ghz: f64,
    rel_freq: f64,
    max_inflight: usize,
    inflight: Vec<InFlight>,
    last_advance: SimTime,
    epoch: u64,
    completed: u64,
    rejected: u64,
}

impl PsServer {
    /// A server with `cores` cores at `core_ghz` nominal, admitting at
    /// most `max_inflight` concurrent requests.
    pub fn new(start: SimTime, cores: usize, core_ghz: f64, max_inflight: usize) -> Self {
        assert!(cores >= 1 && core_ghz > 0.0 && max_inflight >= 1);
        PsServer {
            cores,
            core_ghz,
            rel_freq: 1.0,
            max_inflight,
            inflight: Vec::new(),
            last_advance: start,
            epoch: 0,
            completed: 0,
            rejected: 0,
        }
    }

    /// Core count.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Requests currently in flight (queued + in service — PS does not
    /// distinguish).
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// True when idle.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// State-change epoch; bumps on push / completion / frequency change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Lifetime completions.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Lifetime rejections.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Current relative frequency.
    pub fn rel_freq(&self) -> f64 {
        self.rel_freq
    }

    /// Busy-core fraction in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        (self.inflight.len().min(self.cores)) as f64 / self.cores as f64
    }

    /// Power character of the resident mix as `(utilization, intensity,
    /// gamma)`. Intensity and gamma are averaged over the requests
    /// actually occupying core share (equal shares under PS). An idle
    /// server reports zeros.
    pub fn load_character(&self) -> (f64, f64, f64) {
        if self.inflight.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let n = self.inflight.len() as f64;
        let intensity = self.inflight.iter().map(|f| f.req.intensity).sum::<f64>() / n;
        let gamma = self.inflight.iter().map(|f| f.req.gamma).sum::<f64>() / n;
        (self.utilization(), intensity, gamma)
    }

    /// Mean CPU-boundedness of the resident mix (0 when idle) — what a
    /// power manager needs to price the performance cost of throttling.
    pub fn mean_beta(&self) -> f64 {
        if self.inflight.is_empty() {
            return 0.0;
        }
        self.inflight.iter().map(|f| f.req.beta).sum::<f64>() / self.inflight.len() as f64
    }

    /// Per-request core share under PS.
    #[inline]
    fn share(&self) -> f64 {
        if self.inflight.is_empty() {
            0.0
        } else {
            (self.cores as f64 / self.inflight.len() as f64).min(1.0)
        }
    }

    /// Service rate of one in-flight entry, G-cycles/s.
    #[inline]
    fn rate_of(&self, f: &InFlight) -> f64 {
        self.core_ghz * f.req.rate_factor(self.rel_freq) * self.share()
    }

    /// Integrate all in-flight work up to `now`.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        if dt == 0.0 || self.inflight.is_empty() {
            return;
        }
        let share = self.share();
        let base = self.core_ghz * dt * share;
        for f in &mut self.inflight {
            let done = base * f.req.rate_factor(self.rel_freq);
            f.remaining_gcycles = (f.remaining_gcycles - done).max(0.0);
        }
    }

    /// Change the DVFS relative frequency at `now`.
    pub fn set_rel_freq(&mut self, now: SimTime, rel_f: f64) {
        assert!(rel_f > 0.0 && rel_f <= 1.0 + 1e-9, "rel_f={rel_f}");
        self.advance(now);
        if (rel_f - self.rel_freq).abs() > 1e-12 {
            self.rel_freq = rel_f;
            self.epoch += 1;
        }
    }

    /// Offer a request at `now`.
    pub fn push(&mut self, now: SimTime, req: Request) -> PushOutcome {
        self.advance(now);
        if self.inflight.len() >= self.max_inflight {
            self.rejected += 1;
            return PushOutcome::Rejected;
        }
        self.inflight.push(InFlight {
            remaining_gcycles: req.work_gcycles,
            req,
        });
        self.epoch += 1;
        PushOutcome::Accepted
    }

    /// Predict the next completion as `(eta, request_id)` given current
    /// state. Call [`PsServer::advance`] first. The ETA is rounded up to
    /// the next microsecond so the completion event never fires early.
    pub fn next_completion(&self) -> Option<(SimTime, RequestId)> {
        let mut best: Option<(f64, RequestId)> = None;
        for f in &self.inflight {
            let rate = self.rate_of(f);
            debug_assert!(rate > 0.0);
            let eta = f.remaining_gcycles / rate;
            if best.is_none_or(|(b, _)| eta < b) {
                best = Some((eta, f.req.id));
            }
        }
        best.map(|(eta_s, id)| {
            let micros = (eta_s * 1e6).ceil() as u64;
            (self.last_advance + SimDuration::from_micros(micros), id)
        })
    }

    /// Attempt to complete request `id` at `now`. Returns the request and
    /// its sojourn time if its work is (within integration tolerance)
    /// done; `None` if the ETA was stale and work remains.
    pub fn try_complete(&mut self, now: SimTime, id: RequestId) -> Option<(Request, SimDuration)> {
        self.advance(now);
        let idx = self.inflight.iter().position(|f| f.req.id == id)?;
        // Forgive up to 2 µs of residual work: completion events are
        // scheduled at µs granularity rounded up, so residuals below one
        // tick of extra service are integration noise, not stale ETAs.
        let tol = self.rate_of(&self.inflight[idx]) * 2e-6;
        if self.inflight[idx].remaining_gcycles > tol {
            return None;
        }
        let f = self.inflight.swap_remove(idx);
        self.epoch += 1;
        self.completed += 1;
        let sojourn = now.since(f.req.arrival);
        Some((f.req, sojourn))
    }

    /// Drain every in-flight request (used when a breaker trips and the
    /// node loses power). Returns the abandoned requests.
    pub fn drain(&mut self, now: SimTime) -> Vec<Request> {
        self.advance(now);
        self.epoch += 1;
        self.inflight.drain(..).map(|f| f.req).collect()
    }

    /// Ids and sojourns of in-flight requests older than their client
    /// timeout (diagnostic; the simulation lets the server finish them —
    /// the work still burns power — but clients have abandoned).
    pub fn overdue(&self, now: SimTime) -> Vec<(RequestId, SimDuration)> {
        self.inflight
            .iter()
            .filter_map(|f| {
                let sojourn = now.checked_since(f.req.arrival)?;
                f.req.abandoned(sojourn).then_some((f.req.id, sojourn))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestBuilder, SourceId, UrlId};
    use proptest::prelude::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn server() -> PsServer {
        PsServer::new(SimTime::ZERO, 4, 2.4, 64)
    }

    fn mk(b: &mut RequestBuilder, arrival: SimTime, work: f64, beta: f64) -> Request {
        b.build(UrlId(0), SourceId(0), arrival, work, beta, 0.8, 0.9, false)
    }

    #[test]
    fn single_request_completes_at_nominal_time() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        let r = mk(&mut b, SimTime::ZERO, 2.4, 1.0); // 1 s of work
        assert_eq!(srv.push(SimTime::ZERO, r), PushOutcome::Accepted);
        let (eta, id) = srv.next_completion().unwrap();
        assert_eq!(eta, s(1));
        let (req, sojourn) = srv.try_complete(eta, id).unwrap();
        assert_eq!(req.id, id);
        assert_eq!(sojourn, SimDuration::from_secs(1));
        assert!(srv.is_empty());
        assert_eq!(srv.completed(), 1);
    }

    #[test]
    fn processor_sharing_slows_when_oversubscribed() {
        // 8 identical 1-second jobs on 4 cores: each gets a half core, so
        // all complete at t = 2 s.
        let mut srv = server();
        let mut b = RequestBuilder::new();
        for _ in 0..8 {
            srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        }
        let (eta, _) = srv.next_completion().unwrap();
        assert_eq!(eta, s(2));
    }

    #[test]
    fn underloaded_cores_not_shared() {
        // 2 jobs on 4 cores: each gets a full core.
        let mut srv = server();
        let mut b = RequestBuilder::new();
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        let (eta, _) = srv.next_completion().unwrap();
        assert_eq!(eta, s(1));
        assert_eq!(srv.utilization(), 0.5);
    }

    #[test]
    fn dvfs_slows_cpu_bound_work() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        srv.set_rel_freq(SimTime::ZERO, 0.5);
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        let (eta, _) = srv.next_completion().unwrap();
        assert_eq!(eta, s(2)); // half speed → double time
    }

    #[test]
    fn dvfs_spares_memory_bound_work() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        srv.set_rel_freq(SimTime::ZERO, 0.5);
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 0.0)); // β = 0
        let (eta, _) = srv.next_completion().unwrap();
        assert_eq!(eta, s(1)); // immune to frequency
    }

    #[test]
    fn midflight_frequency_change_stretches_remaining_work() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        // Half the work done at full speed, then throttle to half speed:
        // remaining 0.5 s of work takes 1 s.
        srv.set_rel_freq(SimTime::from_millis(500), 0.5);
        let (eta, _) = srv.next_completion().unwrap();
        assert_eq!(eta, SimTime::from_millis(1500));
    }

    #[test]
    fn epoch_bumps_on_state_changes() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        let e0 = srv.epoch();
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        assert!(srv.epoch() > e0);
        let e1 = srv.epoch();
        srv.set_rel_freq(s(0), 0.8);
        assert!(srv.epoch() > e1);
        let e2 = srv.epoch();
        // No-op frequency change does not bump.
        srv.set_rel_freq(s(0), 0.8);
        assert_eq!(srv.epoch(), e2);
    }

    #[test]
    fn stale_completion_rejected() {
        let mut b = RequestBuilder::new();
        // A second arrival must invalidate the first ETA; use a 1-core
        // server so the two jobs actually share.
        let mut srv = PsServer::new(SimTime::ZERO, 1, 2.4, 64);
        let r = mk(&mut b, SimTime::ZERO, 2.4, 1.0);
        let id = {
            let id = r.id;
            srv.push(SimTime::ZERO, r);
            id
        };
        let (eta, _) = srv.next_completion().unwrap();
        assert_eq!(eta, s(1));
        srv.push(SimTime::from_millis(500), mk(&mut b, SimTime::from_millis(500), 2.4, 1.0));
        // Old ETA is now stale: at t=1 s the first job has 0.25 s·2.4GHz of
        // work left (it ran shared 0.5..1.0).
        assert!(srv.try_complete(s(1), id).is_none());
        let (eta2, next_id) = srv.next_completion().unwrap();
        assert_eq!(next_id, id);
        assert_eq!(eta2, SimTime::from_millis(1500));
        assert!(srv.try_complete(eta2, id).is_some());
        let _ = id;
    }

    #[test]
    fn bounded_queue_rejects() {
        let mut srv = PsServer::new(SimTime::ZERO, 1, 2.4, 2);
        let mut b = RequestBuilder::new();
        assert_eq!(
            srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0)),
            PushOutcome::Accepted
        );
        assert_eq!(
            srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0)),
            PushOutcome::Accepted
        );
        assert_eq!(
            srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0)),
            PushOutcome::Rejected
        );
        assert_eq!(srv.rejected(), 1);
    }

    #[test]
    fn load_character_averages_mix() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        let r1 = b.build(UrlId(0), SourceId(0), SimTime::ZERO, 1.0, 1.0, 1.0, 1.0, false);
        let r2 = b.build(UrlId(1), SourceId(0), SimTime::ZERO, 1.0, 0.0, 0.5, 0.5, true);
        srv.push(SimTime::ZERO, r1);
        srv.push(SimTime::ZERO, r2);
        let (u, i, g) = srv.load_character();
        assert_eq!(u, 0.5);
        assert!((i - 0.75).abs() < 1e-12);
        assert!((g - 0.75).abs() < 1e-12);
        assert_eq!(server().load_character(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn drain_returns_everything() {
        let mut srv = server();
        let mut b = RequestBuilder::new();
        for _ in 0..5 {
            srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 2.4, 1.0));
        }
        let drained = srv.drain(s(0));
        assert_eq!(drained.len(), 5);
        assert!(srv.is_empty());
    }

    #[test]
    fn overdue_detects_abandonment() {
        let mut srv = PsServer::new(SimTime::ZERO, 1, 2.4, 64);
        let mut b = RequestBuilder::new();
        // Huge job: still running at t = 10 s; client timeout is 4 s.
        srv.push(SimTime::ZERO, mk(&mut b, SimTime::ZERO, 1000.0, 1.0));
        assert!(srv.overdue(s(4)).is_empty());
        let od = srv.overdue(s(5));
        assert_eq!(od.len(), 1);
        assert_eq!(od[0].1, SimDuration::from_secs(5));
    }

    proptest! {
        /// Work conservation: total G-cycles completed never exceed
        /// capacity × time, and every accepted request eventually finishes.
        #[test]
        fn prop_all_complete_and_work_conserved(
            works in proptest::collection::vec(0.1f64..5.0, 1..20),
            betas in proptest::collection::vec(0.0f64..1.0, 20),
        ) {
            let mut srv = PsServer::new(SimTime::ZERO, 2, 2.4, 64);
            let mut b = RequestBuilder::new();
            let mut total_work = 0.0;
            for (i, &w) in works.iter().enumerate() {
                let r = b.build(UrlId(0), SourceId(0), SimTime::ZERO, w, betas[i], 0.5, 0.5, false);
                total_work += w;
                prop_assert_eq!(srv.push(SimTime::ZERO, r), PushOutcome::Accepted);
            }
            let mut finished = 0usize;
            let mut last = SimTime::ZERO;
            let mut guard = 0;
            while let Some((eta, id)) = srv.next_completion() {
                guard += 1;
                prop_assert!(guard < 10_000, "completion loop did not converge");
                prop_assert!(eta >= last);
                if srv.try_complete(eta, id).is_some() {
                    finished += 1;
                    last = eta;
                }
            }
            prop_assert_eq!(finished, works.len());
            // Lower bound on makespan: total work / max throughput.
            let min_secs = total_work / (2.0 * 2.4);
            prop_assert!(last.as_secs_f64() >= min_secs - 1e-3,
                "finished too fast: {} < {}", last.as_secs_f64(), min_secs);
        }
    }
}
