//! # netsim — the network-side substrate
//!
//! Everything between the Internet and the compute nodes:
//!
//! * [`Request`] — the unit of traffic: a URL (service type), a source,
//!   per-request work and CPU-boundedness, and ground-truth attack
//!   labeling (used for metrics only, never by defenses).
//! * [`PsServer`] — a multi-core processor-sharing queue whose speed
//!   follows the node's DVFS state, with a bounded accept queue. This is
//!   where throttling turns into queueing delay and tail latency. It is
//!   implemented in virtual time (O(1) advance, O(log n) completion), so
//!   flood-scale occupancy costs nothing per event; see [`queueing`].
//! * [`TokenBucket`] / [`PowerTokenBucket`] — classic rate limiting and
//!   the paper's `Token` baseline (a token bucket denominated in watts).
//! * [`Firewall`] — a DDoS-deflate-style per-source rate-threshold
//!   blocker with polling delay and per-class detection lag; its
//!   threshold defines the DOPE evasion region (Fig 11).
//! * [`Nlb`] — the network load balancer with pluggable forwarding:
//!   round-robin, least-loaded, and URL-split (the mechanism Anti-DOPE's
//!   PDF programs to segregate suspect flows).
//! * [`SuspectList`] — the URL → power-intensity map PDF consults.
//! * [`RetryConfig`] / [`CircuitBreaker`] / [`PoolBreakers`] — the
//!   end-to-end resilience dataplane: bounded retry with exponential
//!   backoff + jitter, and per-pool circuit breakers that steer traffic
//!   away from a tripped rack.
//! * [`AdmissionPipeline`] — the staged perimeter the NLB runs before
//!   routing: firewall, CAPoW-style [`CostToServe`] pricing, and
//!   power-bucket stages behind one [`AdmissionStage`] trait with
//!   per-stage verdict accounting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod error;
pub mod firewall;
pub mod nlb;
pub mod queueing;
pub mod request;
pub mod resilience;
pub mod suspect;
pub mod token_bucket;

pub use admission::{
    AdmissionDecision, AdmissionPipeline, AdmissionReport, AdmissionStage, CostToServe,
    CostToServeConfig, PowerBucketStage, StageKind, StageReport,
};
pub use error::ConfigError;
pub use firewall::{Firewall, FirewallConfig, FirewallVerdict};
pub use nlb::{ForwardingPolicy, Nlb, RackPlacement};
pub use queueing::{PsServer, PushOutcome};
pub use request::{Request, RequestId, SourceId, UrlId};
pub use resilience::{CircuitBreaker, CircuitState, PoolBreakers, RetryConfig};
pub use suspect::SuspectList;
pub use token_bucket::{PowerTokenBucket, TokenBucket};
