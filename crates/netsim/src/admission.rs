//! Staged admission control in front of the NLB.
//!
//! Modern DDoS perimeters stack heterogeneous checks — a per-source rate
//! firewall, context-aware cost-to-serve pricing (CAPoW-style: the more
//! a request costs the datacenter, the more "budget" its admission
//! burns), power-denominated token buckets — and a request must clear
//! every stage before routing. This module unifies them behind one
//! [`AdmissionStage`] trait and a declarative [`AdmissionPipeline`] the
//! engines run between the outage check and the scheme's own admission
//! decision, with per-stage verdict accounting surfaced in the report.
//!
//! Stage order is the declaration order; the first denial wins and later
//! stages never see (or charge for) the request. The firewall keeps its
//! dedicated slot at the front of the pipeline so a firewall-only
//! pipeline is byte-identical — counter for counter — to the historical
//! hard-wired `Option<Firewall>` path.

use crate::error::ConfigError;
use crate::firewall::{Firewall, FirewallVerdict};
use crate::request::Request;
use crate::token_bucket::{PowerTokenBucket, TokenBucket};
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// Which class of admission stage produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Per-source rate-threshold firewall (DDoS-deflate-style).
    Firewall,
    /// Cost-to-serve pricing: admission budget drains by request cost.
    CostToServe,
    /// Power-denominated token bucket.
    TokenBucket,
}

impl StageKind {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Firewall => "firewall",
            StageKind::CostToServe => "cost-to-serve",
            StageKind::TokenBucket => "token-bucket",
        }
    }
}

/// One verdict-issuing admission check.
pub trait AdmissionStage {
    /// The stage's class (used to map denials onto source feedback).
    fn kind(&self) -> StageKind;
    /// Admit (`true`) or deny (`false`) one request.
    fn decide(&mut self, now: SimTime, req: &Request) -> bool;
    /// Requests this stage admitted.
    fn passed(&self) -> u64;
    /// Requests this stage denied.
    fn denied(&self) -> u64;
}

/// Outcome of running a request through the full pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Every stage passed; hand the request to the NLB.
    Admit,
    /// A stage denied; `kind` says which class (the firewall maps to a
    /// `Blocked` source event, every other stage to `Rejected`).
    Deny(StageKind),
}

/// Configuration for the [`CostToServe`] pricing stage.
///
/// CAPoW-style context-aware pricing: the gate holds a budget refilling
/// at `budget_per_s` cost units per second (burstable to
/// `burst_s`-seconds' worth), and each admission drains the request's
/// *cost to serve* — compute volume × power intensity, surcharged for
/// DVFS-insensitive (memory/IO-heavy) demand that capping cannot
/// reclaim. Cheap requests sail through; a flood of expensive ones
/// starves its own admission long before it heats a rack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostToServeConfig {
    /// Budget refill rate, cost units per second.
    pub budget_per_s: f64,
    /// Burst window: the bucket holds `budget_per_s * burst_s`.
    pub burst_s: f64,
    /// Extra price multiplier applied to the DVFS-insensitive fraction
    /// of demand: `price *= 1 + mem_surcharge * (1 - gamma)`.
    pub mem_surcharge: f64,
}

impl Default for CostToServeConfig {
    fn default() -> Self {
        CostToServeConfig {
            budget_per_s: 1000.0,
            burst_s: 2.0,
            mem_surcharge: 2.0,
        }
    }
}

/// CAPoW-style cost-to-serve pricing stage (see [`CostToServeConfig`]).
#[derive(Debug, Clone)]
pub struct CostToServe {
    bucket: TokenBucket,
    mem_surcharge: f64,
}

impl CostToServe {
    /// Build the stage; rejects non-positive budget/burst and a negative
    /// surcharge with a typed [`ConfigError`].
    pub fn try_new(start: SimTime, cfg: CostToServeConfig) -> Result<Self, ConfigError> {
        if !cfg.mem_surcharge.is_finite() || cfg.mem_surcharge < 0.0 {
            return Err(ConfigError::Parameter {
                component: "CostToServe",
                field: "mem_surcharge",
                value: cfg.mem_surcharge,
            });
        }
        let bucket = TokenBucket::try_new(start, cfg.budget_per_s, cfg.budget_per_s * cfg.burst_s)
            .map_err(|_| ConfigError::Parameter {
                component: "CostToServe",
                field: "budget_per_s",
                value: cfg.budget_per_s,
            })?;
        Ok(CostToServe {
            bucket,
            mem_surcharge: cfg.mem_surcharge,
        })
    }

    /// The price charged for admitting `req`: compute volume × power
    /// intensity, surcharged for the DVFS-insensitive demand fraction.
    pub fn price(&self, req: &Request) -> f64 {
        req.work_gcycles * req.intensity * (1.0 + self.mem_surcharge * (1.0 - req.gamma))
    }
}

impl AdmissionStage for CostToServe {
    fn kind(&self) -> StageKind {
        StageKind::CostToServe
    }

    fn decide(&mut self, now: SimTime, req: &Request) -> bool {
        let price = self.price(req);
        self.bucket.try_consume(now, price)
    }

    fn passed(&self) -> u64 {
        self.bucket.admitted()
    }

    fn denied(&self) -> u64 {
        self.bucket.denied()
    }
}

/// A power-denominated token bucket behind the [`AdmissionStage`] trait:
/// each admission drains the request's estimated dynamic energy at
/// `j_per_gcycle` joules per gigacycle of compute, scaled by intensity.
///
/// This wraps the same [`PowerTokenBucket`] the `Token` *scheme* uses,
/// but as a composable perimeter stage; the scheme's own wiring (budget
/// retuned by the control plane each slot) is untouched.
#[derive(Debug, Clone)]
pub struct PowerBucketStage {
    inner: PowerTokenBucket,
    j_per_gcycle: f64,
}

impl PowerBucketStage {
    /// Build the stage; rejects non-positive parameters.
    pub fn try_new(
        start: SimTime,
        dynamic_budget_w: f64,
        burst_seconds: f64,
        j_per_gcycle: f64,
    ) -> Result<Self, ConfigError> {
        if j_per_gcycle <= 0.0 || !j_per_gcycle.is_finite() {
            return Err(ConfigError::Parameter {
                component: "PowerBucketStage",
                field: "j_per_gcycle",
                value: j_per_gcycle,
            });
        }
        Ok(PowerBucketStage {
            inner: PowerTokenBucket::try_new(start, dynamic_budget_w, burst_seconds)?,
            j_per_gcycle,
        })
    }
}

impl AdmissionStage for PowerBucketStage {
    fn kind(&self) -> StageKind {
        StageKind::TokenBucket
    }

    fn decide(&mut self, now: SimTime, req: &Request) -> bool {
        let energy = req.work_gcycles * req.intensity * self.j_per_gcycle;
        self.inner.admit(now, energy)
    }

    fn passed(&self) -> u64 {
        self.inner.admitted()
    }

    fn denied(&self) -> u64 {
        self.inner.denied()
    }
}

/// Per-stage verdict counters for the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage name ([`StageKind::name`]).
    pub stage: String,
    /// Requests the stage admitted.
    pub passed: u64,
    /// Requests the stage denied.
    pub denied: u64,
}

/// Pipeline-level verdict accounting: `offered` requests entered the
/// pipeline, `admitted` cleared every stage, and each stage's own
/// pass/deny split follows (a request denied at stage *k* is counted by
/// stages `0..=k` only — verdicts telescope: each stage's `passed`
/// equals the next stage's `passed + denied`, and the last stage's
/// `passed` equals `admitted`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionReport {
    /// Requests that entered the pipeline.
    pub offered: u64,
    /// Requests that cleared every stage.
    pub admitted: u64,
    /// Per-stage verdict counters, pipeline order.
    pub stages: Vec<StageReport>,
}

/// The staged admission pipeline the NLB runs before routing.
///
/// The firewall occupies a dedicated typed slot at the front (its
/// counters feed the report's historical `firewall_blocked` field);
/// arbitrary [`AdmissionStage`] implementations follow in declaration
/// order.
pub struct AdmissionPipeline {
    firewall: Option<Firewall>,
    stages: Vec<Box<dyn AdmissionStage>>,
    offered: u64,
    admitted: u64,
}

impl AdmissionPipeline {
    /// An empty pipeline (admits everything).
    pub fn new() -> Self {
        AdmissionPipeline {
            firewall: None,
            stages: Vec::new(),
            offered: 0,
            admitted: 0,
        }
    }

    /// Put `firewall` in the front slot.
    pub fn with_firewall(mut self, firewall: Firewall) -> Self {
        self.firewall = Some(firewall);
        self
    }

    /// Append a stage after the firewall (declaration order is run
    /// order).
    pub fn with_stage(mut self, stage: Box<dyn AdmissionStage>) -> Self {
        self.stages.push(stage);
        self
    }

    /// Whether any stage is configured.
    pub fn is_empty(&self) -> bool {
        self.firewall.is_none() && self.stages.is_empty()
    }

    /// Whether any stage beyond the front firewall is configured (the
    /// engines use this to decide if the report carries the per-stage
    /// breakdown).
    pub fn has_staged_checks(&self) -> bool {
        !self.stages.is_empty()
    }

    /// Run one request through every stage; first denial wins.
    pub fn decide(&mut self, now: SimTime, req: &Request) -> AdmissionDecision {
        self.offered += 1;
        if let Some(fw) = &mut self.firewall {
            if fw.inspect(now, req.source) == FirewallVerdict::Blocked {
                return AdmissionDecision::Deny(StageKind::Firewall);
            }
        }
        for stage in &mut self.stages {
            if !stage.decide(now, req) {
                return AdmissionDecision::Deny(stage.kind());
            }
        }
        self.admitted += 1;
        AdmissionDecision::Admit
    }

    /// The front firewall, if configured.
    pub fn firewall(&self) -> Option<&Firewall> {
        self.firewall.as_ref()
    }

    /// Requests the front firewall blocked (0 without a firewall).
    pub fn firewall_blocked(&self) -> u64 {
        self.firewall.as_ref().map(|f| f.blocked_requests()).unwrap_or(0)
    }

    /// Requests denied by post-firewall stages.
    pub fn stage_denied(&self) -> u64 {
        self.stages.iter().map(|s| s.denied()).sum()
    }

    /// Verdict accounting for the report.
    pub fn report(&self) -> AdmissionReport {
        let mut stages = Vec::with_capacity(self.stages.len() + 1);
        if let Some(fw) = &self.firewall {
            stages.push(StageReport {
                stage: StageKind::Firewall.name().to_string(),
                passed: fw.passed_requests(),
                denied: fw.blocked_requests(),
            });
        }
        for s in &self.stages {
            stages.push(StageReport {
                stage: s.kind().name().to_string(),
                passed: s.passed(),
                denied: s.denied(),
            });
        }
        AdmissionReport {
            offered: self.offered,
            admitted: self.admitted,
            stages,
        }
    }
}

impl Default for AdmissionPipeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firewall::FirewallConfig;
    use crate::request::{RequestBuilder, SourceId, UrlId};

    fn req(builder: &mut RequestBuilder, at: SimTime, work: f64, gamma: f64) -> Request {
        builder.build(UrlId(1), SourceId(7), at, work, 0.9, 1.0, gamma, false)
    }

    #[test]
    fn empty_pipeline_admits_everything() {
        let mut p = AdmissionPipeline::new();
        let mut b = RequestBuilder::starting_at(0);
        for i in 0..10 {
            let r = req(&mut b, SimTime::from_secs(i), 1.0, 0.9);
            assert_eq!(p.decide(r.arrival, &r), AdmissionDecision::Admit);
        }
        let rep = p.report();
        assert_eq!(rep.offered, 10);
        assert_eq!(rep.admitted, 10);
        assert!(rep.stages.is_empty());
    }

    #[test]
    fn firewall_denials_map_to_firewall_kind() {
        let fw = Firewall::new(
            SimTime::ZERO,
            FirewallConfig {
                threshold_rps: 5.0,
                ..FirewallConfig::default()
            },
        );
        let mut p = AdmissionPipeline::new().with_firewall(fw);
        let mut b = RequestBuilder::starting_at(0);
        // 50 req/s from one source for 10 s: the ban matures after the
        // first poll + 5 s lag and everything after is blocked.
        let mut denied = 0;
        for i in 0..500 {
            let at = SimTime::from_millis(i * 20);
            let r = req(&mut b, at, 1.0, 0.9);
            if p.decide(at, &r) == AdmissionDecision::Deny(StageKind::Firewall) {
                denied += 1;
            }
        }
        assert!(denied > 0, "ban never landed");
        assert_eq!(p.firewall_blocked(), denied);
        assert_eq!(p.stage_denied(), 0);
        let rep = p.report();
        assert_eq!(rep.offered, 500);
        assert_eq!(rep.admitted + denied, 500);
    }

    #[test]
    fn cost_to_serve_starves_expensive_floods() {
        let stage = CostToServe::try_new(
            SimTime::ZERO,
            CostToServeConfig {
                budget_per_s: 10.0,
                burst_s: 1.0,
                mem_surcharge: 0.0,
            },
        )
        .unwrap();
        let mut p = AdmissionPipeline::new().with_stage(Box::new(stage));
        let mut b = RequestBuilder::starting_at(0);
        // 100 requests of cost 5 offered in one second against a budget
        // of 10/s with a 10-unit burst: only a handful clear.
        let mut admitted = 0;
        for i in 0..100 {
            let at = SimTime::from_millis(i * 10);
            let r = req(&mut b, at, 5.0, 0.9);
            if p.decide(at, &r) == AdmissionDecision::Admit {
                admitted += 1;
            }
        }
        assert!(admitted <= 5, "admitted {admitted}");
        assert_eq!(p.stage_denied(), 100 - admitted);
    }

    #[test]
    fn mem_surcharge_prices_unreclaimable_demand_higher() {
        let stage = CostToServe::try_new(SimTime::ZERO, CostToServeConfig::default()).unwrap();
        let mut b = RequestBuilder::starting_at(0);
        let cpu = req(&mut b, SimTime::ZERO, 1.0, 0.9);
        let mem = req(&mut b, SimTime::ZERO, 1.0, 0.2);
        assert!(stage.price(&mem) > stage.price(&cpu));
    }

    #[test]
    fn verdicts_telescope_across_stages() {
        let fw = Firewall::new(
            SimTime::ZERO,
            FirewallConfig {
                threshold_rps: 20.0,
                ..FirewallConfig::default()
            },
        );
        let cost = CostToServe::try_new(
            SimTime::ZERO,
            CostToServeConfig {
                budget_per_s: 50.0,
                burst_s: 1.0,
                mem_surcharge: 1.0,
            },
        )
        .unwrap();
        let mut p = AdmissionPipeline::new()
            .with_firewall(fw)
            .with_stage(Box::new(cost));
        let mut b = RequestBuilder::starting_at(0);
        for i in 0..2000 {
            let at = SimTime::from_millis(i * 10);
            let r = req(&mut b, at, 2.0, 0.5);
            p.decide(at, &r);
        }
        let rep = p.report();
        assert_eq!(rep.offered, 2000);
        assert_eq!(rep.stages.len(), 2);
        // Stage 0 sees everything the pipeline saw.
        assert_eq!(rep.stages[0].passed + rep.stages[0].denied, rep.offered);
        // Each stage's passes equal the next stage's arrivals; the last
        // stage's passes equal the pipeline's admissions.
        assert_eq!(
            rep.stages[0].passed,
            rep.stages[1].passed + rep.stages[1].denied
        );
        assert_eq!(rep.stages[1].passed, rep.admitted);
        assert!(rep.stages[1].denied > 0, "cost stage never engaged");
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        assert!(CostToServe::try_new(
            SimTime::ZERO,
            CostToServeConfig {
                budget_per_s: 0.0,
                burst_s: 1.0,
                mem_surcharge: 0.0
            }
        )
        .is_err());
        assert!(CostToServe::try_new(
            SimTime::ZERO,
            CostToServeConfig {
                budget_per_s: 1.0,
                burst_s: 1.0,
                mem_surcharge: -1.0
            }
        )
        .is_err());
        assert!(PowerBucketStage::try_new(SimTime::ZERO, 100.0, 1.0, 0.0).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 64,
            ..proptest::prelude::ProptestConfig::default()
        })]

        /// Verdict accounting closes for any three-stage stack and any
        /// traffic shape: counters telescope stage to stage, and every
        /// arrival is exactly one of firewall-blocked, stage-denied, or
        /// admitted.
        #[test]
        fn prop_verdict_counters_sum_to_arrivals(
            n in 1usize..400,
            threshold in 5.0f64..200.0,
            budget in 1.0f64..40.0,
            burst in 0.1f64..3.0,
            surcharge in 0.0f64..3.0,
            work in 0.05f64..4.0,
            gamma in 0.0f64..1.0,
            sources in 1u32..6,
            gap_ms in 1u64..40,
        ) {
            use proptest::prelude::prop_assert_eq;
            let fw = Firewall::new(
                SimTime::ZERO,
                FirewallConfig {
                    threshold_rps: threshold,
                    ..FirewallConfig::default()
                },
            );
            let cost = CostToServe::try_new(
                SimTime::ZERO,
                CostToServeConfig {
                    budget_per_s: budget,
                    burst_s: burst,
                    mem_surcharge: surcharge,
                },
            )
            .expect("valid cost config");
            let power = PowerBucketStage::try_new(SimTime::ZERO, budget * 2.0, 1.0, 0.5)
                .expect("valid bucket config");
            let mut p = AdmissionPipeline::new()
                .with_firewall(fw)
                .with_stage(Box::new(cost))
                .with_stage(Box::new(power));
            let mut b = RequestBuilder::starting_at(0);
            for i in 0..n {
                let at = SimTime::from_millis(i as u64 * gap_ms);
                let r = b.build(
                    UrlId(1),
                    SourceId(i as u32 % sources),
                    at,
                    work,
                    0.9,
                    1.0,
                    gamma,
                    false,
                );
                p.decide(at, &r);
            }
            let rep = p.report();
            prop_assert_eq!(rep.offered, n as u64);
            prop_assert_eq!(rep.stages.len(), 3);
            prop_assert_eq!(rep.stages[0].passed + rep.stages[0].denied, rep.offered);
            for k in 1..rep.stages.len() {
                prop_assert_eq!(
                    rep.stages[k].passed + rep.stages[k].denied,
                    rep.stages[k - 1].passed
                );
            }
            prop_assert_eq!(rep.stages[rep.stages.len() - 1].passed, rep.admitted);
            prop_assert_eq!(
                p.firewall_blocked() + p.stage_denied() + rep.admitted,
                rep.offered
            );
        }
    }

    #[test]
    fn power_bucket_stage_counts_verdicts() {
        let stage = PowerBucketStage::try_new(SimTime::ZERO, 10.0, 1.0, 1.0).unwrap();
        let mut p = AdmissionPipeline::new().with_stage(Box::new(stage));
        let mut b = RequestBuilder::starting_at(0);
        let mut admitted = 0;
        for i in 0..50 {
            let at = SimTime::from_millis(i * 10);
            let r = req(&mut b, at, 4.0, 0.9);
            if p.decide(at, &r) == AdmissionDecision::Admit {
                admitted += 1;
            }
        }
        assert!(admitted >= 1);
        assert!(p.stage_denied() > 0);
        assert_eq!(p.report().admitted, admitted);
    }
}
