//! The suspect list: URL → power intensity, built by offline profiling.
//!
//! Section 5.2: "Anti-DOPE establishes \[the\] suspect list by offline
//! profiling the relationship between power and service types for
//! heterogeneous requests." The list maps each URL to its measured
//! per-request power intensity; URLs whose intensity exceeds a threshold
//! are classified *suspect* and forwarded to the isolated pool.

use crate::error::ConfigError;
use crate::request::UrlId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// URL classification produced by PDF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowClass {
    /// High-power service type → isolated pool.
    Suspect,
    /// Ordinary traffic → main pool.
    Innocent,
}

/// Offline-profiled URL → power-intensity map with a suspicion threshold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuspectList {
    intensities: HashMap<UrlId, f64>,
    threshold: f64,
    /// Classification for URLs never profiled.
    default_class: FlowClass,
}

impl SuspectList {
    /// Empty list: everything classified `default_class` until profiled.
    /// Rejects thresholds outside `[0, 1]` (profiled intensities are
    /// normalized, so such a threshold could never bite).
    pub fn new(threshold: f64, default_class: FlowClass) -> Result<Self, ConfigError> {
        if !(0.0..=1.0).contains(&threshold) || !threshold.is_finite() {
            return Err(ConfigError::Threshold { value: threshold });
        }
        Ok(SuspectList {
            intensities: HashMap::new(),
            threshold,
            default_class,
        })
    }

    /// The suspicion threshold on profiled intensity.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Record (or update) a profiled intensity for `url`. Rejects
    /// intensities outside the normalized `[0, 1]` range.
    pub fn set_profile(&mut self, url: UrlId, intensity: f64) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&intensity) || !intensity.is_finite() {
            return Err(ConfigError::Intensity { value: intensity });
        }
        self.intensities.insert(url, intensity);
        Ok(())
    }

    /// Profiled intensity of `url`, if known.
    pub fn intensity(&self, url: UrlId) -> Option<f64> {
        self.intensities.get(&url).copied()
    }

    /// Classify a URL.
    pub fn classify(&self, url: UrlId) -> FlowClass {
        match self.intensities.get(&url) {
            Some(&i) if i > self.threshold => FlowClass::Suspect,
            Some(_) => FlowClass::Innocent,
            None => self.default_class,
        }
    }

    /// Convenience: is this URL suspect?
    pub fn is_suspect(&self, url: UrlId) -> bool {
        self.classify(url) == FlowClass::Suspect
    }

    /// Number of profiled URLs.
    pub fn profiled(&self) -> usize {
        self.intensities.len()
    }

    /// All suspect URLs, sorted by id for deterministic iteration.
    pub fn suspects(&self) -> Vec<UrlId> {
        let mut v: Vec<UrlId> = self
            .intensities
            .iter()
            .filter(|(_, &i)| i > self.threshold)
            .map(|(&u, _)| u)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_threshold() {
        let mut sl = SuspectList::new(0.7, FlowClass::Innocent).unwrap();
        sl.set_profile(UrlId(0), 0.95).unwrap(); // Colla-Filt-like
        sl.set_profile(UrlId(1), 0.9).unwrap(); // K-means-like
        sl.set_profile(UrlId(2), 0.75).unwrap(); // Word-Count-like
        sl.set_profile(UrlId(3), 0.35).unwrap(); // Text-Cont-like
        assert!(sl.is_suspect(UrlId(0)));
        assert!(sl.is_suspect(UrlId(1)));
        assert!(sl.is_suspect(UrlId(2)));
        assert!(!sl.is_suspect(UrlId(3)));
        assert_eq!(sl.suspects(), vec![UrlId(0), UrlId(1), UrlId(2)]);
    }

    #[test]
    fn unknown_urls_take_default() {
        let innocent_default = SuspectList::new(0.5, FlowClass::Innocent).unwrap();
        assert_eq!(innocent_default.classify(UrlId(99)), FlowClass::Innocent);
        let paranoid = SuspectList::new(0.5, FlowClass::Suspect).unwrap();
        assert_eq!(paranoid.classify(UrlId(99)), FlowClass::Suspect);
    }

    #[test]
    fn exactly_at_threshold_is_innocent() {
        let mut sl = SuspectList::new(0.7, FlowClass::Innocent).unwrap();
        sl.set_profile(UrlId(0), 0.7).unwrap();
        assert!(!sl.is_suspect(UrlId(0)));
    }

    #[test]
    fn reprofiling_overwrites() {
        let mut sl = SuspectList::new(0.5, FlowClass::Innocent).unwrap();
        sl.set_profile(UrlId(0), 0.9).unwrap();
        assert!(sl.is_suspect(UrlId(0)));
        sl.set_profile(UrlId(0), 0.1).unwrap();
        assert!(!sl.is_suspect(UrlId(0)));
        assert_eq!(sl.profiled(), 1);
        assert_eq!(sl.intensity(UrlId(0)), Some(0.1));
    }

    #[test]
    fn out_of_range_parameters_are_typed_errors() {
        assert_eq!(
            SuspectList::new(1.5, FlowClass::Innocent).unwrap_err(),
            ConfigError::Threshold { value: 1.5 }
        );
        assert!(SuspectList::new(f64::NAN, FlowClass::Innocent).is_err());
        let mut sl = SuspectList::new(0.5, FlowClass::Innocent).unwrap();
        assert_eq!(
            sl.set_profile(UrlId(0), -0.1).unwrap_err(),
            ConfigError::Intensity { value: -0.1 }
        );
        // A rejected profile leaves the list untouched.
        assert_eq!(sl.profiled(), 0);
    }
}
