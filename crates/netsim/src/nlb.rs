//! The network load balancer.
//!
//! Routes each admitted request to a backend server under a pluggable
//! [`ForwardingPolicy`]:
//!
//! * `RoundRobin` — the vanilla NLB the paper's baselines run.
//! * `LeastLoaded` — joins the shortest queue using load feedback.
//! * `UrlSplit` — the paper's PDF mechanism: URLs on the suspect list go
//!   to the isolated *suspect pool*, everything else to the main pool
//!   (the "url-based forwarding module" + "package rewriter" of Fig 14).

use crate::request::Request;
use crate::suspect::SuspectList;

/// How the NLB picks a backend.
#[derive(Debug, Clone)]
pub enum ForwardingPolicy {
    /// Cycle through all backends.
    RoundRobin,
    /// Pick the backend with the smallest reported load.
    LeastLoaded,
    /// PDF: split by suspect list into two pools, round-robin within
    /// each pool.
    UrlSplit {
        /// The offline-profiled suspect list.
        list: SuspectList,
        /// Backend indices reserved for suspect flows.
        suspect_pool: Vec<usize>,
        /// Backend indices serving innocent flows.
        innocent_pool: Vec<usize>,
    },
}

/// The load balancer: a forwarding policy over `n` backends.
#[derive(Debug, Clone)]
pub struct Nlb {
    backends: usize,
    policy: ForwardingPolicy,
    rr_cursor: usize,
    suspect_cursor: usize,
    innocent_cursor: usize,
    /// Last reported per-backend load (in-flight counts).
    loads: Vec<usize>,
    forwarded: u64,
    to_suspect_pool: u64,
}

impl Nlb {
    /// NLB over `backends` servers.
    pub fn new(backends: usize, policy: ForwardingPolicy) -> Self {
        assert!(backends >= 1);
        if let ForwardingPolicy::UrlSplit {
            suspect_pool,
            innocent_pool,
            ..
        } = &policy
        {
            assert!(!suspect_pool.is_empty(), "suspect pool must be non-empty");
            assert!(!innocent_pool.is_empty(), "innocent pool must be non-empty");
            assert!(
                suspect_pool.iter().chain(innocent_pool).all(|&i| i < backends),
                "pool index out of range"
            );
            assert!(
                suspect_pool.iter().all(|i| !innocent_pool.contains(i)),
                "pools must be disjoint"
            );
        }
        Nlb {
            backends,
            policy,
            rr_cursor: 0,
            suspect_cursor: 0,
            innocent_cursor: 0,
            loads: vec![0; backends],
            forwarded: 0,
            to_suspect_pool: 0,
        }
    }

    /// Number of backends.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// Feed back a backend's current in-flight count (LeastLoaded input).
    pub fn report_load(&mut self, backend: usize, inflight: usize) {
        self.loads[backend] = inflight;
    }

    /// Total requests forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Requests sent to the suspect pool (UrlSplit only).
    pub fn to_suspect_pool(&self) -> u64 {
        self.to_suspect_pool
    }

    /// The active policy.
    pub fn policy(&self) -> &ForwardingPolicy {
        &self.policy
    }

    /// Mutable access to the policy (RPM updates the suspect list online).
    pub fn policy_mut(&mut self) -> &mut ForwardingPolicy {
        &mut self.policy
    }

    /// Choose the backend for `req`.
    pub fn route(&mut self, req: &Request) -> usize {
        self.forwarded += 1;
        match &self.policy {
            ForwardingPolicy::RoundRobin => {
                let b = self.rr_cursor % self.backends;
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                b
            }
            ForwardingPolicy::LeastLoaded => {
                // Smallest load; ties break on the lowest index for
                // determinism.
                let mut best = 0;
                for i in 1..self.backends {
                    if self.loads[i] < self.loads[best] {
                        best = i;
                    }
                }
                // Optimistically count the new request so bursts spread.
                self.loads[best] += 1;
                best
            }
            ForwardingPolicy::UrlSplit {
                list,
                suspect_pool,
                innocent_pool,
            } => {
                if list.is_suspect(req.url) {
                    self.to_suspect_pool += 1;
                    let b = suspect_pool[self.suspect_cursor % suspect_pool.len()];
                    self.suspect_cursor = self.suspect_cursor.wrapping_add(1);
                    b
                } else {
                    let b = innocent_pool[self.innocent_cursor % innocent_pool.len()];
                    self.innocent_cursor = self.innocent_cursor.wrapping_add(1);
                    b
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestBuilder, SourceId, UrlId};
    use crate::suspect::FlowClass;
    use simcore::SimTime;

    fn req(b: &mut RequestBuilder, url: u16) -> Request {
        b.build(
            UrlId(url),
            SourceId(0),
            SimTime::ZERO,
            1.0,
            0.5,
            0.5,
            0.5,
            false,
        )
    }

    #[test]
    fn round_robin_cycles() {
        let mut nlb = Nlb::new(3, ForwardingPolicy::RoundRobin);
        let mut b = RequestBuilder::new();
        let picks: Vec<usize> = (0..6).map(|_| nlb.route(&req(&mut b, 0))).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(nlb.forwarded(), 6);
    }

    #[test]
    fn least_loaded_follows_feedback() {
        let mut nlb = Nlb::new(3, ForwardingPolicy::LeastLoaded);
        let mut b = RequestBuilder::new();
        nlb.report_load(0, 10);
        nlb.report_load(1, 2);
        nlb.report_load(2, 5);
        assert_eq!(nlb.route(&req(&mut b, 0)), 1);
        // Optimistic increment: backend 1 now at 3, still smallest.
        assert_eq!(nlb.route(&req(&mut b, 0)), 1);
        nlb.report_load(1, 20);
        assert_eq!(nlb.route(&req(&mut b, 0)), 2);
    }

    #[test]
    fn least_loaded_spreads_bursts() {
        let mut nlb = Nlb::new(4, ForwardingPolicy::LeastLoaded);
        let mut b = RequestBuilder::new();
        // With zero feedback, optimistic counting spreads a burst evenly.
        let picks: Vec<usize> = (0..8).map(|_| nlb.route(&req(&mut b, 0))).collect();
        let mut counts = [0usize; 4];
        for p in picks {
            counts[p] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2]);
    }

    fn split_nlb() -> Nlb {
        let mut list = SuspectList::new(0.7, FlowClass::Innocent);
        list.set_profile(UrlId(0), 0.95); // suspect
        list.set_profile(UrlId(3), 0.3); // innocent
        Nlb::new(
            4,
            ForwardingPolicy::UrlSplit {
                list,
                suspect_pool: vec![3],
                innocent_pool: vec![0, 1, 2],
            },
        )
    }

    #[test]
    fn url_split_isolates_suspects() {
        let mut nlb = split_nlb();
        let mut b = RequestBuilder::new();
        for _ in 0..5 {
            assert_eq!(nlb.route(&req(&mut b, 0)), 3);
        }
        let innocents: Vec<usize> = (0..6).map(|_| nlb.route(&req(&mut b, 3))).collect();
        assert_eq!(innocents, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(nlb.to_suspect_pool(), 5);
    }

    #[test]
    fn url_split_unknown_url_uses_default() {
        let mut nlb = split_nlb();
        let mut b = RequestBuilder::new();
        // URL 42 unprofiled, default Innocent → main pool.
        assert!(nlb.route(&req(&mut b, 42)) < 3);
    }

    #[test]
    #[should_panic(expected = "pools must be disjoint")]
    fn overlapping_pools_rejected() {
        let list = SuspectList::new(0.7, FlowClass::Innocent);
        Nlb::new(
            4,
            ForwardingPolicy::UrlSplit {
                list,
                suspect_pool: vec![0, 1],
                innocent_pool: vec![1, 2],
            },
        );
    }

    #[test]
    #[should_panic(expected = "pool index out of range")]
    fn out_of_range_pool_rejected() {
        let list = SuspectList::new(0.7, FlowClass::Innocent);
        Nlb::new(
            2,
            ForwardingPolicy::UrlSplit {
                list,
                suspect_pool: vec![5],
                innocent_pool: vec![0],
            },
        );
    }
}
