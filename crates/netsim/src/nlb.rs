//! The network load balancer.
//!
//! Routes each admitted request to a backend server under a pluggable
//! [`ForwardingPolicy`]:
//!
//! * `RoundRobin` — the vanilla NLB the paper's baselines run.
//! * `LeastLoaded` — joins the shortest queue using load feedback.
//! * `UrlSplit` — the paper's PDF mechanism: URLs on the suspect list go
//!   to the isolated *suspect pool*, everything else to the main pool
//!   (the "url-based forwarding module" + "package rewriter" of Fig 14).
//! * `AdaptiveSplit` — PDF driven by the online power-attribution
//!   profiler: the same pool split, but the URL → class map is published
//!   at runtime (and re-published as the profiler learns), so no offline
//!   profile is needed. Classification stays an O(1) hash lookup on the
//!   forwarding hot path.

use crate::error::ConfigError;
use crate::request::{Request, UrlId};
use crate::suspect::{FlowClass, SuspectList};
use simcore::FxHashMap;

/// How the NLB picks a backend.
#[derive(Debug, Clone)]
pub enum ForwardingPolicy {
    /// Cycle through all backends.
    RoundRobin,
    /// Pick the backend with the smallest reported load.
    LeastLoaded,
    /// PDF: split by suspect list into two pools, round-robin within
    /// each pool.
    UrlSplit {
        /// The offline-profiled suspect list.
        list: SuspectList,
        /// Backend indices reserved for suspect flows.
        suspect_pool: Vec<usize>,
        /// Backend indices serving innocent flows.
        innocent_pool: Vec<usize>,
    },
    /// Oracle-free PDF: split by a class map the online profiler
    /// publishes between monitor ticks (hot-swapped via
    /// [`Nlb::policy_mut`]).
    AdaptiveSplit {
        /// Published URL classifications.
        classes: FxHashMap<UrlId, FlowClass>,
        /// Class for URLs the profiler has not (yet) decided.
        default_class: FlowClass,
        /// Backend indices reserved for suspect flows.
        suspect_pool: Vec<usize>,
        /// Backend indices serving innocent flows.
        innocent_pool: Vec<usize>,
    },
}

/// Physical placement of backends onto racks, for topology-aware
/// routing. Each URL has a deterministic *home rack* (`url mod racks`);
/// routing prefers healthy backends in a request's home rack so a rack
/// outage degrades only the flows homed there, and falls back to the
/// placement-blind policy when the home rack has no healthy candidate.
#[derive(Debug, Clone)]
pub struct RackPlacement {
    racks: usize,
    rack_of: Vec<usize>,
}

impl RackPlacement {
    /// Placement of `rack_of.len()` backends onto `racks` racks
    /// (`rack_of[backend]` = owning rack).
    pub fn new(racks: usize, rack_of: Vec<usize>) -> Result<Self, ConfigError> {
        if racks == 0 || rack_of.is_empty() {
            return Err(ConfigError::NoBackends);
        }
        if let Some((backend, &rack)) = rack_of.iter().enumerate().find(|&(_, &r)| r >= racks) {
            return Err(ConfigError::RackOutOfRange {
                backend,
                rack,
                racks,
            });
        }
        Ok(RackPlacement { racks, rack_of })
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// The rack owning `backend`.
    pub fn rack_of(&self, backend: usize) -> usize {
        self.rack_of[backend]
    }

    /// The home rack of a URL: `url mod racks`. Deterministic, so the
    /// same service always concentrates on the same rack — which is
    /// exactly the affinity a concentrating flood exploits.
    pub fn home_rack(&self, url: UrlId) -> usize {
        url.0 as usize % self.racks
    }
}

/// The load balancer: a forwarding policy over `n` backends.
#[derive(Debug, Clone)]
pub struct Nlb {
    backends: usize,
    policy: ForwardingPolicy,
    rr_cursor: usize,
    suspect_cursor: usize,
    innocent_cursor: usize,
    /// Dedicated cursor for rack-affine picks, so enabling a placement
    /// never perturbs the placement-blind cursors.
    rack_cursor: usize,
    /// Last reported per-backend load (in-flight counts).
    loads: Vec<usize>,
    /// Health-check verdict per backend; routing skips unhealthy ones.
    healthy: Vec<bool>,
    /// Backend → rack placement, when the cluster is topology-aware.
    placement: Option<RackPlacement>,
    forwarded: u64,
    to_suspect_pool: u64,
}

impl Nlb {
    /// NLB over `backends` servers.
    pub fn new(backends: usize, policy: ForwardingPolicy) -> Result<Self, ConfigError> {
        if backends < 1 {
            return Err(ConfigError::NoBackends);
        }
        if let ForwardingPolicy::UrlSplit {
            suspect_pool,
            innocent_pool,
            ..
        }
        | ForwardingPolicy::AdaptiveSplit {
            suspect_pool,
            innocent_pool,
            ..
        } = &policy
        {
            if suspect_pool.is_empty() {
                return Err(ConfigError::EmptyPool { pool: "suspect" });
            }
            if innocent_pool.is_empty() {
                return Err(ConfigError::EmptyPool { pool: "innocent" });
            }
            if let Some(&index) = suspect_pool
                .iter()
                .chain(innocent_pool)
                .find(|&&i| i >= backends)
            {
                return Err(ConfigError::PoolIndexOutOfRange { index, backends });
            }
            if let Some(&index) = suspect_pool.iter().find(|i| innocent_pool.contains(i)) {
                return Err(ConfigError::OverlappingPools { index });
            }
        }
        Ok(Nlb {
            backends,
            policy,
            rr_cursor: 0,
            suspect_cursor: 0,
            innocent_cursor: 0,
            rack_cursor: 0,
            loads: vec![0; backends],
            healthy: vec![true; backends],
            placement: None,
            forwarded: 0,
            to_suspect_pool: 0,
        })
    }

    /// Number of backends.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// Attach a backend → rack placement; routing becomes rack-affine
    /// (see [`RackPlacement`]). The placement must cover every backend.
    pub fn set_placement(&mut self, placement: RackPlacement) -> Result<(), ConfigError> {
        if placement.rack_of.len() != self.backends {
            return Err(ConfigError::PoolIndexOutOfRange {
                index: placement.rack_of.len(),
                backends: self.backends,
            });
        }
        self.placement = Some(placement);
        Ok(())
    }

    /// The attached rack placement, if any.
    pub fn placement(&self) -> Option<&RackPlacement> {
        self.placement.as_ref()
    }

    /// Feed back a backend's current in-flight count (LeastLoaded input).
    pub fn report_load(&mut self, backend: usize, inflight: usize) {
        self.loads[backend] = inflight;
    }

    /// Bulk load refresh for slot-batched engines: overwrite the load
    /// estimates of the backends starting at `first` from a contiguous
    /// in-flight column. The sharded cluster engine calls this once per
    /// shard at each slot boundary instead of `report_load` per event,
    /// which also discards the optimistic increments LeastLoaded routing
    /// accumulated during the slot.
    pub fn sync_loads(&mut self, first: usize, inflight: &[u32]) {
        let dst = &mut self.loads[first..first + inflight.len()];
        for (l, &c) in dst.iter_mut().zip(inflight) {
            *l = c as usize;
        }
    }

    /// Health-check verdict for a backend. Unhealthy backends are skipped
    /// by all forwarding policies until marked healthy again.
    pub fn set_health(&mut self, backend: usize, ok: bool) {
        self.healthy[backend] = ok;
    }

    /// Whether a backend currently passes health checks.
    pub fn is_healthy(&self, backend: usize) -> bool {
        self.healthy[backend]
    }

    /// Number of backends currently passing health checks.
    pub fn healthy_backends(&self) -> usize {
        self.healthy.iter().filter(|&&h| h).count()
    }

    /// Total requests forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Requests sent to the suspect pool (UrlSplit only).
    pub fn to_suspect_pool(&self) -> u64 {
        self.to_suspect_pool
    }

    /// The active policy.
    pub fn policy(&self) -> &ForwardingPolicy {
        &self.policy
    }

    /// Mutable access to the policy (RPM updates the suspect list online).
    pub fn policy_mut(&mut self) -> &mut ForwardingPolicy {
        &mut self.policy
    }

    /// Choose the backend for `req`.
    ///
    /// With a [`RackPlacement`] attached, every policy first tries a
    /// healthy backend in the request's home rack (within whatever pool
    /// the policy selected) and only falls back to the placement-blind
    /// pick when the home rack has none — so circuit breakers and rack
    /// outages shift only the flows homed on the dark rack.
    ///
    /// Unhealthy backends are routed around: round-robin cursors skip
    /// them, least-loaded ignores them in the min-scan, and UrlSplit
    /// skips them within each pool. If *every* candidate is unhealthy the
    /// NLB still forwards (to the first candidate it tried) — a dead
    /// backend rejecting the request models the real-world connection
    /// failure better than the balancer silently black-holing it.
    pub fn route(&mut self, req: &Request) -> usize {
        self.forwarded += 1;
        match &self.policy {
            ForwardingPolicy::RoundRobin => {
                if let Some(p) = &self.placement {
                    let home = p.home_rack(req.url);
                    if let Some(b) = pick_in_rack_range(
                        self.backends,
                        &mut self.rack_cursor,
                        &self.healthy,
                        p,
                        home,
                    ) {
                        return b;
                    }
                }
                let first = self.rr_cursor % self.backends;
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                let mut b = first;
                let mut tried = 1;
                while !self.healthy[b] && tried < self.backends {
                    b = self.rr_cursor % self.backends;
                    self.rr_cursor = self.rr_cursor.wrapping_add(1);
                    tried += 1;
                }
                if self.healthy[b] {
                    b
                } else {
                    first
                }
            }
            ForwardingPolicy::LeastLoaded => {
                if let Some(p) = &self.placement {
                    // Min-scan restricted to the home rack first.
                    let home = p.home_rack(req.url);
                    let mut best: Option<usize> = None;
                    for i in 0..self.backends {
                        if !self.healthy[i] || p.rack_of[i] != home {
                            continue;
                        }
                        match best {
                            Some(b) if self.loads[i] >= self.loads[b] => {}
                            _ => best = Some(i),
                        }
                    }
                    if let Some(b) = best {
                        self.loads[b] += 1;
                        return b;
                    }
                }
                // Smallest load among healthy backends; ties break on the
                // lowest index for determinism.
                let mut best: Option<usize> = None;
                for i in 0..self.backends {
                    if !self.healthy[i] {
                        continue;
                    }
                    match best {
                        Some(b) if self.loads[i] >= self.loads[b] => {}
                        _ => best = Some(i),
                    }
                }
                let b = best.unwrap_or(0);
                // Optimistically count the new request so bursts spread.
                self.loads[b] += 1;
                b
            }
            ForwardingPolicy::UrlSplit {
                list,
                suspect_pool,
                innocent_pool,
            } => {
                let (pool, cursor) = if list.is_suspect(req.url) {
                    self.to_suspect_pool += 1;
                    (suspect_pool, &mut self.suspect_cursor)
                } else {
                    (innocent_pool, &mut self.innocent_cursor)
                };
                if let Some(p) = &self.placement {
                    let home = p.home_rack(req.url);
                    if let Some(b) =
                        pick_in_rack_pool(pool, &mut self.rack_cursor, &self.healthy, p, home)
                    {
                        return b;
                    }
                }
                pick_healthy(pool, cursor, &self.healthy)
            }
            ForwardingPolicy::AdaptiveSplit {
                classes,
                default_class,
                suspect_pool,
                innocent_pool,
            } => {
                let class = classes.get(&req.url).copied().unwrap_or(*default_class);
                let (pool, cursor) = if class == FlowClass::Suspect {
                    self.to_suspect_pool += 1;
                    (suspect_pool, &mut self.suspect_cursor)
                } else {
                    (innocent_pool, &mut self.innocent_cursor)
                };
                if let Some(p) = &self.placement {
                    let home = p.home_rack(req.url);
                    if let Some(b) =
                        pick_in_rack_pool(pool, &mut self.rack_cursor, &self.healthy, p, home)
                    {
                        return b;
                    }
                }
                pick_healthy(pool, cursor, &self.healthy)
            }
        }
    }
}

/// Round-robin over `0..backends` restricted to the backends of rack
/// `home`, skipping unhealthy members. `None` when the rack has no
/// healthy backend — the caller falls back to placement-blind routing.
fn pick_in_rack_range(
    backends: usize,
    cursor: &mut usize,
    healthy: &[bool],
    placement: &RackPlacement,
    home: usize,
) -> Option<usize> {
    for _ in 0..backends {
        let b = *cursor % backends;
        *cursor = cursor.wrapping_add(1);
        if placement.rack_of[b] == home && healthy[b] {
            return Some(b);
        }
    }
    None
}

/// Round-robin over the members of `pool` that live in rack `home`,
/// skipping unhealthy ones. `None` when the pool has no healthy member
/// in the rack.
fn pick_in_rack_pool(
    pool: &[usize],
    cursor: &mut usize,
    healthy: &[bool],
    placement: &RackPlacement,
    home: usize,
) -> Option<usize> {
    for _ in 0..pool.len() {
        let b = pool[*cursor % pool.len()];
        *cursor = cursor.wrapping_add(1);
        if placement.rack_of[b] == home && healthy[b] {
            return Some(b);
        }
    }
    None
}

/// Round-robin within `pool`, skipping unhealthy members; if every member
/// is down, falls back to the first candidate tried (see [`Nlb::route`]).
fn pick_healthy(pool: &[usize], cursor: &mut usize, healthy: &[bool]) -> usize {
    let first = pool[*cursor % pool.len()];
    *cursor = cursor.wrapping_add(1);
    let mut b = first;
    let mut tried = 1;
    while !healthy[b] && tried < pool.len() {
        b = pool[*cursor % pool.len()];
        *cursor = cursor.wrapping_add(1);
        tried += 1;
    }
    if healthy[b] {
        b
    } else {
        first
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestBuilder, SourceId, UrlId};
    use crate::suspect::FlowClass;
    use simcore::SimTime;

    fn req(b: &mut RequestBuilder, url: u16) -> Request {
        b.build(
            UrlId(url),
            SourceId(0),
            SimTime::ZERO,
            1.0,
            0.5,
            0.5,
            0.5,
            false,
        )
    }

    #[test]
    fn round_robin_cycles() {
        let mut nlb = Nlb::new(3, ForwardingPolicy::RoundRobin).unwrap();
        let mut b = RequestBuilder::new();
        let picks: Vec<usize> = (0..6).map(|_| nlb.route(&req(&mut b, 0))).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(nlb.forwarded(), 6);
    }

    #[test]
    fn least_loaded_follows_feedback() {
        let mut nlb = Nlb::new(3, ForwardingPolicy::LeastLoaded).unwrap();
        let mut b = RequestBuilder::new();
        nlb.report_load(0, 10);
        nlb.report_load(1, 2);
        nlb.report_load(2, 5);
        assert_eq!(nlb.route(&req(&mut b, 0)), 1);
        // Optimistic increment: backend 1 now at 3, still smallest.
        assert_eq!(nlb.route(&req(&mut b, 0)), 1);
        nlb.report_load(1, 20);
        assert_eq!(nlb.route(&req(&mut b, 0)), 2);
    }

    #[test]
    fn least_loaded_spreads_bursts() {
        let mut nlb = Nlb::new(4, ForwardingPolicy::LeastLoaded).unwrap();
        let mut b = RequestBuilder::new();
        // With zero feedback, optimistic counting spreads a burst evenly.
        let picks: Vec<usize> = (0..8).map(|_| nlb.route(&req(&mut b, 0))).collect();
        let mut counts = [0usize; 4];
        for p in picks {
            counts[p] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2]);
    }

    fn split_nlb() -> Nlb {
        let mut list = SuspectList::new(0.7, FlowClass::Innocent).unwrap();
        list.set_profile(UrlId(0), 0.95).unwrap(); // suspect
        list.set_profile(UrlId(3), 0.3).unwrap(); // innocent
        Nlb::new(
            4,
            ForwardingPolicy::UrlSplit {
                list,
                suspect_pool: vec![3],
                innocent_pool: vec![0, 1, 2],
            },
        )
        .unwrap()
    }

    #[test]
    fn url_split_isolates_suspects() {
        let mut nlb = split_nlb();
        let mut b = RequestBuilder::new();
        for _ in 0..5 {
            assert_eq!(nlb.route(&req(&mut b, 0)), 3);
        }
        let innocents: Vec<usize> = (0..6).map(|_| nlb.route(&req(&mut b, 3))).collect();
        assert_eq!(innocents, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(nlb.to_suspect_pool(), 5);
    }

    #[test]
    fn url_split_unknown_url_uses_default() {
        let mut nlb = split_nlb();
        let mut b = RequestBuilder::new();
        // URL 42 unprofiled, default Innocent → main pool.
        assert!(nlb.route(&req(&mut b, 42)) < 3);
    }

    #[test]
    fn overlapping_pools_rejected() {
        let list = SuspectList::new(0.7, FlowClass::Innocent).unwrap();
        let err = Nlb::new(
            4,
            ForwardingPolicy::UrlSplit {
                list,
                suspect_pool: vec![0, 1],
                innocent_pool: vec![1, 2],
            },
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::OverlappingPools { index: 1 });
    }

    #[test]
    fn out_of_range_pool_rejected() {
        let list = SuspectList::new(0.7, FlowClass::Innocent).unwrap();
        let err = Nlb::new(
            2,
            ForwardingPolicy::UrlSplit {
                list,
                suspect_pool: vec![5],
                innocent_pool: vec![0],
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            ConfigError::PoolIndexOutOfRange {
                index: 5,
                backends: 2
            }
        );
        assert_eq!(
            Nlb::new(0, ForwardingPolicy::RoundRobin).unwrap_err(),
            ConfigError::NoBackends
        );
    }

    #[test]
    fn round_robin_skips_unhealthy() {
        let mut nlb = Nlb::new(3, ForwardingPolicy::RoundRobin).unwrap();
        let mut b = RequestBuilder::new();
        nlb.set_health(1, false);
        let picks: Vec<usize> = (0..4).map(|_| nlb.route(&req(&mut b, 0))).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
        // Recovery re-admits the backend into the rotation.
        nlb.set_health(1, true);
        assert_eq!(nlb.healthy_backends(), 3);
        let picks: Vec<usize> = (0..3).map(|_| nlb.route(&req(&mut b, 0))).collect();
        assert!(picks.contains(&1));
    }

    #[test]
    fn least_loaded_ignores_unhealthy() {
        let mut nlb = Nlb::new(3, ForwardingPolicy::LeastLoaded).unwrap();
        let mut b = RequestBuilder::new();
        nlb.report_load(0, 10);
        nlb.report_load(1, 2);
        nlb.report_load(2, 5);
        nlb.set_health(1, false);
        // Backend 1 has the least load but is down: pick 2 instead.
        assert_eq!(nlb.route(&req(&mut b, 0)), 2);
    }

    #[test]
    fn url_split_pool_routes_around_dead_member() {
        let mut nlb = split_nlb();
        let mut b = RequestBuilder::new();
        nlb.set_health(1, false);
        let innocents: Vec<usize> = (0..4).map(|_| nlb.route(&req(&mut b, 3))).collect();
        assert_eq!(innocents, vec![0, 2, 0, 2]);
        // Suspect pool has a single member; if it dies, traffic still
        // lands there (and is rejected by the dead node) rather than
        // leaking into the innocent pool.
        nlb.set_health(3, false);
        assert_eq!(nlb.route(&req(&mut b, 0)), 3);
    }

    fn adaptive_nlb() -> Nlb {
        Nlb::new(
            4,
            ForwardingPolicy::AdaptiveSplit {
                classes: FxHashMap::default(),
                default_class: FlowClass::Innocent,
                suspect_pool: vec![3],
                innocent_pool: vec![0, 1, 2],
            },
        )
        .unwrap()
    }

    #[test]
    fn adaptive_split_routes_by_published_classes() {
        let mut nlb = adaptive_nlb();
        if let ForwardingPolicy::AdaptiveSplit { classes, .. } = nlb.policy_mut() {
            classes.insert(UrlId(0), FlowClass::Suspect);
            classes.insert(UrlId(3), FlowClass::Innocent);
        }
        let mut b = RequestBuilder::new();
        for _ in 0..3 {
            assert_eq!(nlb.route(&req(&mut b, 0)), 3);
        }
        let innocents: Vec<usize> = (0..3).map(|_| nlb.route(&req(&mut b, 3))).collect();
        assert_eq!(innocents, vec![0, 1, 2]);
        // Unclassified URLs take the default class.
        assert!(nlb.route(&req(&mut b, 42)) < 3);
        assert_eq!(nlb.to_suspect_pool(), 3);
    }

    #[test]
    fn adaptive_split_hot_swap_reroutes() {
        let mut nlb = adaptive_nlb();
        let mut b = RequestBuilder::new();
        // Before the profiler learns anything, URL 7 rides the main pool.
        assert!(nlb.route(&req(&mut b, 7)) < 3);
        // The profiler publishes a new class map between ticks…
        if let ForwardingPolicy::AdaptiveSplit { classes, .. } = nlb.policy_mut() {
            classes.insert(UrlId(7), FlowClass::Suspect);
        }
        // …and the very next request is isolated.
        assert_eq!(nlb.route(&req(&mut b, 7)), 3);
    }

    #[test]
    fn adaptive_split_validates_pools_like_url_split() {
        let err = Nlb::new(
            4,
            ForwardingPolicy::AdaptiveSplit {
                classes: FxHashMap::default(),
                default_class: FlowClass::Innocent,
                suspect_pool: vec![2],
                innocent_pool: vec![1, 2],
            },
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::OverlappingPools { index: 2 });
        let err = Nlb::new(
            4,
            ForwardingPolicy::AdaptiveSplit {
                classes: FxHashMap::default(),
                default_class: FlowClass::Innocent,
                suspect_pool: vec![],
                innocent_pool: vec![0],
            },
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::EmptyPool { pool: "suspect" });
    }

    #[test]
    fn sync_loads_overwrites_optimistic_estimates() {
        let mut nlb = Nlb::new(4, ForwardingPolicy::LeastLoaded).unwrap();
        let mut b = RequestBuilder::new();
        // Optimistic increments pile up on the least-loaded pick.
        for _ in 0..4 {
            nlb.route(&req(&mut b, 0));
        }
        // A slot-boundary refresh from two shard columns replaces them.
        nlb.sync_loads(0, &[7, 0]);
        nlb.sync_loads(2, &[3, 3]);
        assert_eq!(nlb.route(&req(&mut b, 0)), 1, "backend 1 is now emptiest");
    }

    fn placed(policy: ForwardingPolicy) -> Nlb {
        // 4 backends, 2 racks: {0, 1} in rack 0, {2, 3} in rack 1.
        let mut nlb = Nlb::new(4, policy).unwrap();
        nlb.set_placement(RackPlacement::new(2, vec![0, 0, 1, 1]).unwrap())
            .unwrap();
        nlb
    }

    #[test]
    fn rack_affinity_routes_to_home_rack() {
        let mut nlb = placed(ForwardingPolicy::RoundRobin);
        let mut b = RequestBuilder::new();
        // URL 0 homes on rack 0, URL 1 on rack 1.
        for _ in 0..4 {
            assert!(nlb.route(&req(&mut b, 0)) < 2);
        }
        for _ in 0..4 {
            assert!(nlb.route(&req(&mut b, 1)) >= 2);
        }
    }

    #[test]
    fn rack_affinity_falls_back_when_home_rack_dark() {
        let mut nlb = placed(ForwardingPolicy::RoundRobin);
        let mut b = RequestBuilder::new();
        nlb.set_health(2, false);
        nlb.set_health(3, false);
        // URL 1 homes on rack 1, now fully dark: the pick falls back to
        // the placement-blind rotation over healthy backends.
        for _ in 0..4 {
            assert!(nlb.route(&req(&mut b, 1)) < 2);
        }
    }

    #[test]
    fn rack_affine_least_loaded_stays_in_rack() {
        let mut nlb = placed(ForwardingPolicy::LeastLoaded);
        let mut b = RequestBuilder::new();
        nlb.report_load(0, 9);
        nlb.report_load(1, 9);
        nlb.report_load(2, 0);
        // Rack 1 is emptier, but URL 0 homes on rack 0.
        assert!(nlb.route(&req(&mut b, 0)) < 2);
    }

    #[test]
    fn rack_affinity_respects_split_pools() {
        let mut list = SuspectList::new(0.7, FlowClass::Innocent).unwrap();
        list.set_profile(UrlId(0), 0.95).unwrap(); // suspect, homes on rack 0
        let mut nlb = Nlb::new(
            4,
            ForwardingPolicy::UrlSplit {
                list,
                suspect_pool: vec![3],
                innocent_pool: vec![0, 1, 2],
            },
        )
        .unwrap();
        nlb.set_placement(RackPlacement::new(2, vec![0, 0, 1, 1]).unwrap())
            .unwrap();
        let mut b = RequestBuilder::new();
        // The suspect pool has no rack-0 member: isolation wins over
        // affinity and the request still lands in the suspect pool.
        assert_eq!(nlb.route(&req(&mut b, 0)), 3);
        // Innocent URL 2 homes on rack 0; pool members 0..=2 include
        // rack-0 backends, so affinity keeps it there.
        assert!(nlb.route(&req(&mut b, 2)) < 2);
    }

    #[test]
    fn placement_validates_shape() {
        assert_eq!(
            RackPlacement::new(2, vec![0, 2]).unwrap_err(),
            ConfigError::RackOutOfRange {
                backend: 1,
                rack: 2,
                racks: 2
            }
        );
        assert_eq!(
            RackPlacement::new(0, vec![]).unwrap_err(),
            ConfigError::NoBackends
        );
        let mut nlb = Nlb::new(3, ForwardingPolicy::RoundRobin).unwrap();
        let err = nlb
            .set_placement(RackPlacement::new(2, vec![0, 1]).unwrap())
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::PoolIndexOutOfRange {
                index: 2,
                backends: 3
            }
        );
    }

    #[test]
    fn all_dead_still_forwards_deterministically() {
        let mut nlb = Nlb::new(2, ForwardingPolicy::RoundRobin).unwrap();
        let mut b = RequestBuilder::new();
        nlb.set_health(0, false);
        nlb.set_health(1, false);
        let first = nlb.route(&req(&mut b, 0));
        assert!(first < 2);
        assert_eq!(nlb.forwarded(), 1);
    }
}
