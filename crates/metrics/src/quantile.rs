//! The P² (piecewise-parabolic) streaming quantile estimator.
//!
//! Jain & Chlamtac (1985): estimates a single quantile of a stream with
//! five markers and O(1) memory, no buckets to size. We use it for
//! online control decisions (e.g. the health checker watching p90 power)
//! where allocating a full histogram per server per slot would be wasteful
//! — the hot path is five floats and a handful of branches.

use serde::{Deserialize, Serialize};

/// Streaming estimator of one quantile via the P² algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates of the 0, p/2, p, (1+p)/2, 1 quantiles).
    q: [f64; 5],
    /// Marker positions (1-based ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments per observation.
    dn: [f64; 5],
    count: u64,
    /// First five observations, collected before the estimator activates.
    warmup: [f64; 5],
}

impl P2Quantile {
    /// Estimator for the `p`-quantile (`0 < p < 1`).
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1): {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            warmup: [0.0; 5],
        }
    }

    /// The quantile this estimator targets.
    pub fn target(&self) -> f64 {
        self.p
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample: {x}");
        if self.count < 5 {
            self.warmup[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.warmup
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                self.q = self.warmup;
            }
            return;
        }
        self.count += 1;

        // Find the cell k such that q[k] <= x < q[k+1], adjusting extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.q[i] && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    #[inline]
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let n = &self.n;
        let q = &self.q;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    #[inline]
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate; `None` until at least one sample is seen.
    /// With fewer than 5 samples, returns the exact quantile of what has
    /// been seen.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            c if c < 5 => {
                let mut xs = self.warmup[..c as usize].to_vec();
                xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let rank = ((self.p * c as f64).ceil() as usize).max(1);
                Some(xs[rank - 1])
            }
            _ => Some(self.q[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_has_no_estimate() {
        assert_eq!(P2Quantile::new(0.9).estimate(), None);
    }

    #[test]
    fn small_counts_exact() {
        let mut e = P2Quantile::new(0.5);
        e.record(3.0);
        assert_eq!(e.estimate(), Some(3.0));
        e.record(1.0);
        e.record(2.0);
        assert_eq!(e.estimate(), Some(2.0));
    }

    #[test]
    fn uniform_median_converges() {
        let mut e = P2Quantile::new(0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50_000 {
            e.record(rng.gen_range(0.0..1.0));
        }
        let est = e.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn uniform_p90_converges() {
        let mut e = P2Quantile::new(0.9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..50_000 {
            e.record(rng.gen_range(0.0..100.0));
        }
        let est = e.estimate().unwrap();
        assert!((est - 90.0).abs() < 2.0, "p90 estimate {est}");
    }

    #[test]
    fn exponential_tail() {
        let mut e = P2Quantile::new(0.95);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..100_000 {
            let u: f64 = rng.gen_range(0.0f64..1.0);
            e.record(-(1.0 - u).ln());
        }
        // True p95 of Exp(1) is ln(20) ≈ 2.9957.
        let est = e.estimate().unwrap();
        assert!((est - 2.9957).abs() < 0.15, "p95 estimate {est}");
    }

    #[test]
    fn constant_stream() {
        let mut e = P2Quantile::new(0.9);
        for _ in 0..1000 {
            e.record(7.0);
        }
        assert_eq!(e.estimate(), Some(7.0));
    }

    #[test]
    fn sorted_input_does_not_break() {
        let mut e = P2Quantile::new(0.5);
        for i in 0..10_000 {
            e.record(i as f64);
        }
        let est = e.estimate().unwrap();
        assert!((est - 5000.0).abs() < 500.0, "median of 0..10000 ≈ {est}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_bad_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    proptest! {
        /// Estimate always lies within [min, max] of the samples.
        #[test]
        fn prop_estimate_in_range(xs in proptest::collection::vec(-1e4f64..1e4, 1..300)) {
            let mut e = P2Quantile::new(0.9);
            for &x in &xs { e.record(x); }
            let est = e.estimate().unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "est={} not in [{}, {}]", est, lo, hi);
        }
    }
}
