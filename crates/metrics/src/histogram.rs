//! Log-binned latency histogram with bounded relative error.
//!
//! Latency distributions in the paper span three orders of magnitude
//! (sub-millisecond service times to multi-hundred-millisecond throttled
//! tails), so a linear-bin histogram is either huge or inaccurate at one
//! end. We use geometric bins: values in `[min_value, max_value]` are
//! mapped to `bins_per_decade` logarithmic buckets per factor-of-ten,
//! giving a constant relative quantile error of about
//! `10^(1/bins_per_decade) - 1` (≈ 3.6 % with the default 64/decade).

use crate::summary::OnlineSummary;
use serde::{Deserialize, Serialize};

/// Streaming histogram over positive values with geometric bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    min_value: f64,
    bins_per_decade: f64,
    counts: Vec<u64>,
    underflow: u64,
    summary: OnlineSummary,
}

impl LatencyHistogram {
    /// Histogram for values in `[min_value, max_value]` with
    /// `bins_per_decade` buckets per decade. Values below `min_value`
    /// count in a dedicated underflow bucket (reported as `min_value`);
    /// values above `max_value` clamp to the last bucket.
    pub fn new(min_value: f64, max_value: f64, bins_per_decade: u32) -> Self {
        assert!(min_value > 0.0 && max_value > min_value);
        assert!(bins_per_decade > 0);
        let decades = (max_value / min_value).log10();
        let nbins = (decades * bins_per_decade as f64).ceil() as usize + 1;
        LatencyHistogram {
            min_value,
            bins_per_decade: bins_per_decade as f64,
            counts: vec![0; nbins],
            underflow: 0,
            summary: OnlineSummary::new(),
        }
    }

    /// A histogram suited to response times in seconds: 10 µs – 1000 s.
    pub fn for_latency_secs() -> Self {
        LatencyHistogram::new(1e-5, 1e3, 64)
    }

    /// A histogram suited to server power in watts: 1 W – 10 kW.
    pub fn for_power_watts() -> Self {
        LatencyHistogram::new(1.0, 1e4, 128)
    }

    #[inline]
    fn bin_of(&self, x: f64) -> Option<usize> {
        if x < self.min_value {
            return None;
        }
        let idx = ((x / self.min_value).log10() * self.bins_per_decade) as usize;
        Some(idx.min(self.counts.len() - 1))
    }

    #[inline]
    fn bin_value(&self, idx: usize) -> f64 {
        // Geometric midpoint of the bucket.
        self.min_value * 10f64.powf((idx as f64 + 0.5) / self.bins_per_decade)
    }

    /// Record one sample. Panics on non-finite or negative values.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite() && x >= 0.0, "invalid histogram sample: {x}");
        self.summary.record(x);
        match self.bin_of(x) {
            Some(i) => self.counts[i] += 1,
            None => self.underflow += 1,
        }
    }

    /// Replace the exact-moments summary wholesale, keeping the bin
    /// counts. The sharded cluster engine merges per-shard histograms
    /// (bin counts are `u64` sums, associative in any order) but folds
    /// the floating-point summary separately in a fixed global node
    /// order so reports stay byte-identical across shard layouts; this
    /// installs that canonical fold. The caller must pass a summary
    /// describing exactly the samples in the bins.
    pub fn set_summary(&mut self, summary: OnlineSummary) {
        debug_assert_eq!(
            summary.count(),
            self.counts.iter().sum::<u64>() + self.underflow,
            "summary does not describe the binned samples"
        );
        self.summary = summary;
    }

    /// Merge another histogram with identical geometry.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "geometry mismatch");
        assert_eq!(self.min_value, other.min_value, "geometry mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.summary.merge(&other.summary);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact mean of all recorded samples (tracked outside the bins).
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// Exact minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.summary.min()
    }

    /// Exact maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.summary.max()
    }

    /// Exact standard deviation of recorded samples.
    pub fn std_dev(&self) -> f64 {
        self.summary.std_dev()
    }

    /// The `q`-quantile (`q` in `[0, 1]`), approximated to the bucket's
    /// relative error. Returns `None` when empty.
    ///
    /// Quantiles are clamped to the exact observed `[min, max]` so that
    /// e.g. `quantile(1.0)` never exceeds the true maximum.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let n = self.count();
        if n == 0 {
            return None;
        }
        // Rank of the target sample, 1-based, nearest-rank definition.
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        let raw = if rank <= seen {
            self.min_value
        } else {
            let mut val = self.bin_value(self.counts.len() - 1);
            for (i, &c) in self.counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    val = self.bin_value(i);
                    break;
                }
            }
            val
        };
        let (lo, hi) = self.summary.min().zip(self.summary.max())?;
        Some(raw.clamp(lo, hi))
    }

    /// Median shorthand.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 90th / 95th / 99th percentile shorthands used throughout the paper.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }
    /// 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }
    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Iterate non-empty buckets as `(representative_value, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let under = (self.underflow > 0).then_some((self.min_value, self.underflow));
        under.into_iter().chain(
            self.counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (self.bin_value(i), c)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::for_latency_secs();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn single_value() {
        let mut h = LatencyHistogram::for_latency_secs();
        h.record(0.1);
        assert_eq!(h.count(), 1);
        let m = h.median().unwrap();
        assert!((m - 0.1).abs() / 0.1 < 0.05, "median {m}");
        // Clamping makes extreme quantiles exact.
        assert_eq!(h.quantile(1.0), Some(0.1));
        assert_eq!(h.quantile(0.0), Some(0.1));
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = LatencyHistogram::new(1e-3, 1e3, 64);
        let mut values: Vec<f64> = (1..=10_000).map(|i| i as f64 * 1e-3).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.9, 0.95, 0.99] {
            let approx = h.quantile(q).unwrap();
            let exact = exact_quantile(&values, q);
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.05, "q={q}: approx={approx} exact={exact} rel={rel}");
        }
    }

    #[test]
    fn underflow_counted() {
        let mut h = LatencyHistogram::new(1.0, 100.0, 16);
        h.record(0.01);
        h.record(50.0);
        assert_eq!(h.count(), 2);
        // Rank 1 lands in the underflow bucket, which is reported at the
        // histogram floor (min_value), the documented resolution limit.
        assert_eq!(h.quantile(0.25), Some(1.0));
        // The exact minimum is still tracked outside the bins.
        assert_eq!(h.min(), Some(0.01));
    }

    #[test]
    fn overflow_clamps() {
        let mut h = LatencyHistogram::new(1.0, 10.0, 16);
        h.record(1e6);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(1e6));
        // Bucket value is clamped up to the observed max.
        assert_eq!(h.quantile(1.0), Some(1e6));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::for_latency_secs();
        for v in [0.010, 0.020, 0.030] {
            h.record(v);
        }
        assert!((h.mean() - 0.020).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_combined() {
        let mut a = LatencyHistogram::for_latency_secs();
        let mut b = LatencyHistogram::for_latency_secs();
        let mut c = LatencyHistogram::for_latency_secs();
        for i in 1..=100 {
            let v = i as f64 * 1e-3;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.quantile(0.9), c.quantile(0.9));
        assert!((a.mean() - c.mean()).abs() < 1e-12);
    }

    #[test]
    fn buckets_iterate_in_order() {
        let mut h = LatencyHistogram::new(1.0, 1000.0, 8);
        h.record(2.0);
        h.record(200.0);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert!(buckets[0].0 < buckets[1].0);
        assert_eq!(buckets.iter().map(|b| b.1).sum::<u64>(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid histogram sample")]
    fn rejects_negative() {
        LatencyHistogram::for_latency_secs().record(-1.0);
    }

    proptest! {
        #[test]
        fn prop_quantiles_monotone(values in proptest::collection::vec(1e-4f64..1e2, 1..500)) {
            let mut h = LatencyHistogram::for_latency_secs();
            for &v in &values { h.record(v); }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
            let mut prev = f64::NEG_INFINITY;
            for &q in &qs {
                let v = h.quantile(q).unwrap();
                prop_assert!(v >= prev, "quantile({q})={v} < {prev}");
                prev = v;
            }
        }

        #[test]
        fn prop_quantile_relative_error(values in proptest::collection::vec(1e-4f64..1e2, 10..500)) {
            let mut h = LatencyHistogram::for_latency_secs();
            let mut sorted = values.clone();
            for &v in &values { h.record(v); }
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.5, 0.9] {
                let approx = h.quantile(q).unwrap();
                let exact = exact_quantile(&sorted, q);
                prop_assert!((approx - exact).abs() / exact < 0.05,
                    "q={} approx={} exact={}", q, approx, exact);
            }
        }

        #[test]
        fn prop_count_conserved(values in proptest::collection::vec(0f64..1e3, 0..300)) {
            let mut h = LatencyHistogram::new(0.1, 100.0, 16);
            for &v in &values { h.record(v); }
            prop_assert_eq!(h.count(), values.len() as u64);
            let bucket_total: u64 = h.buckets().map(|(_, c)| c).sum();
            prop_assert_eq!(bucket_total, values.len() as u64);
        }
    }
}
