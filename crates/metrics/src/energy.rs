//! Energy accounting.
//!
//! Fig 19 of the paper reports *normalized* energy per power-management
//! scheme, split between utility supply and battery. [`EnergyMeter`]
//! integrates one or more step-power channels exactly and reports joules
//! and watt-hours per channel and in total.

use crate::timeseries::TimeWeighted;
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// Identifies an energy channel on a meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergySource {
    /// Power drawn from the utility feed.
    Utility,
    /// Power drawn from (discharged by) batteries.
    Battery,
    /// Power spent recharging batteries (counted against utility).
    BatteryCharge,
}

/// Multi-channel exact energy integrator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyMeter {
    utility: TimeWeighted,
    battery: TimeWeighted,
    charge: TimeWeighted,
}

/// Joules per watt-hour.
pub const JOULES_PER_WH: f64 = 3600.0;

impl EnergyMeter {
    /// New meter with all channels at zero from `start`.
    pub fn new(start: SimTime) -> Self {
        EnergyMeter {
            utility: TimeWeighted::new(start, 0.0).without_history(),
            battery: TimeWeighted::new(start, 0.0).without_history(),
            charge: TimeWeighted::new(start, 0.0).without_history(),
        }
    }

    /// Set the instantaneous power (watts) on a channel at time `t`.
    pub fn set_power(&mut self, t: SimTime, source: EnergySource, watts: f64) {
        assert!(watts >= 0.0, "negative channel power: {watts}");
        match source {
            EnergySource::Utility => self.utility.set(t, watts),
            EnergySource::Battery => self.battery.set(t, watts),
            EnergySource::BatteryCharge => self.charge.set(t, watts),
        }
    }

    /// Current power on a channel.
    pub fn power(&self, source: EnergySource) -> f64 {
        match source {
            EnergySource::Utility => self.utility.value(),
            EnergySource::Battery => self.battery.value(),
            EnergySource::BatteryCharge => self.charge.value(),
        }
    }

    /// Energy drawn on a channel through time `t`, in joules.
    pub fn joules(&self, t: SimTime, source: EnergySource) -> f64 {
        match source {
            EnergySource::Utility => self.utility.integral_until(t),
            EnergySource::Battery => self.battery.integral_until(t),
            EnergySource::BatteryCharge => self.charge.integral_until(t),
        }
    }

    /// Energy on a channel through `t`, in watt-hours.
    pub fn watt_hours(&self, t: SimTime, source: EnergySource) -> f64 {
        self.joules(t, source) / JOULES_PER_WH
    }

    /// Total energy delivered to the load through `t`: utility (net of
    /// charging, which goes to the battery not the load) plus battery
    /// discharge, in joules.
    pub fn load_joules(&self, t: SimTime) -> f64 {
        self.utility.integral_until(t) - self.charge.integral_until(t)
            + self.battery.integral_until(t)
    }

    /// Total energy billed at the utility meter through `t`, in joules
    /// (includes recharge losses because charging draws from utility).
    pub fn billed_joules(&self, t: SimTime) -> f64 {
        self.utility.integral_until(t)
    }

    /// Peak utility power seen so far.
    pub fn utility_peak(&self) -> f64 {
        self.utility.peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn utility_only() {
        let mut m = EnergyMeter::new(s(0));
        m.set_power(s(0), EnergySource::Utility, 100.0);
        m.set_power(s(3600), EnergySource::Utility, 0.0);
        assert!((m.joules(s(3600), EnergySource::Utility) - 360_000.0).abs() < 1e-6);
        assert!((m.watt_hours(s(3600), EnergySource::Utility) - 100.0).abs() < 1e-9);
        assert_eq!(m.utility_peak(), 100.0);
    }

    #[test]
    fn battery_contributes_to_load_not_bill() {
        let mut m = EnergyMeter::new(s(0));
        m.set_power(s(0), EnergySource::Utility, 80.0);
        m.set_power(s(0), EnergySource::Battery, 20.0);
        let t = s(100);
        assert!((m.load_joules(t) - 10_000.0).abs() < 1e-6);
        assert!((m.billed_joules(t) - 8_000.0).abs() < 1e-6);
    }

    #[test]
    fn charging_is_billed_but_not_load() {
        let mut m = EnergyMeter::new(s(0));
        m.set_power(s(0), EnergySource::Utility, 100.0);
        m.set_power(s(0), EnergySource::BatteryCharge, 10.0);
        let t = s(10);
        // Load receives 100 - 10 = 90 W.
        assert!((m.load_joules(t) - 900.0).abs() < 1e-6);
        assert!((m.billed_joules(t) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn channels_independent() {
        let mut m = EnergyMeter::new(s(0));
        m.set_power(s(0), EnergySource::Battery, 50.0);
        assert_eq!(m.power(EnergySource::Utility), 0.0);
        assert_eq!(m.power(EnergySource::Battery), 50.0);
        assert_eq!(m.joules(s(10), EnergySource::Utility), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative channel power")]
    fn rejects_negative_power() {
        EnergyMeter::new(s(0)).set_power(s(0), EnergySource::Utility, -5.0);
    }

    #[test]
    fn stepwise_profile() {
        let mut m = EnergyMeter::new(s(0));
        m.set_power(s(0), EnergySource::Utility, 100.0);
        m.set_power(s(10), EnergySource::Utility, 300.0);
        m.set_power(s(20), EnergySource::Utility, 50.0);
        assert!((m.joules(s(30), EnergySource::Utility) - (1000.0 + 3000.0 + 500.0)).abs() < 1e-6);
        assert_eq!(m.utility_peak(), 300.0);
    }
}
