//! Welford online mean/variance with min/max tracking.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming summary of a scalar sample stream.
///
/// Uses Welford's algorithm, so the variance stays accurate even when the
/// mean is large relative to the spread (e.g. power readings around 100 W
/// with ±2 W noise).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineSummary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineSummary {
    /// Empty summary.
    pub fn new() -> Self {
        OnlineSummary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one sample. Non-finite samples are rejected with a panic:
    /// a NaN entering a power/latency summary means the simulation itself
    /// is broken and must not be silently absorbed.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample: {x}");
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another summary into this one (parallel reduction), using
    /// Chan et al.'s pairwise update.
    pub fn merge(&mut self, other: &OnlineSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0.0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Coefficient of variation (std dev / mean); 0 when mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_stats(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn empty_defaults() {
        let s = OnlineSummary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineSummary::new();
        s.record(42.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn matches_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineSummary::new();
        for &x in &xs {
            s.record(x);
        }
        let (mean, var) = naive_stats(&xs);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 31.0).abs() < 1e-12);
    }

    #[test]
    fn stable_for_large_offset() {
        // Classic catastrophic-cancellation case for the naive formula.
        let mut s = OnlineSummary::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            s.record(x);
        }
        assert!((s.variance() - 22.5).abs() < 1e-6, "var={}", s.variance());
    }

    #[test]
    fn bessel_correction() {
        let mut s = OnlineSummary::new();
        for x in [2.0, 4.0] {
            s.record(x);
        }
        assert!((s.variance() - 1.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn rejects_nan() {
        OnlineSummary::new().record(f64::NAN);
    }

    #[test]
    fn cv_zero_mean() {
        let mut s = OnlineSummary::new();
        s.record(1.0);
        s.record(-1.0);
        assert_eq!(s.cv(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_merge_equals_sequential(
            a in proptest::collection::vec(-1e6f64..1e6, 0..50),
            b in proptest::collection::vec(-1e6f64..1e6, 0..50),
        ) {
            let mut merged = OnlineSummary::new();
            let mut left = OnlineSummary::new();
            let mut right = OnlineSummary::new();
            for &x in &a { merged.record(x); left.record(x); }
            for &x in &b { merged.record(x); right.record(x); }
            left.merge(&right);
            prop_assert_eq!(left.count(), merged.count());
            prop_assert!((left.mean() - merged.mean()).abs() < 1e-6);
            prop_assert!((left.variance() - merged.variance()).abs() < 1e-3);
        }

        #[test]
        fn prop_mean_bounded_by_min_max(xs in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
            let mut s = OnlineSummary::new();
            for &x in &xs { s.record(x); }
            let m = s.mean();
            prop_assert!(m >= s.min().unwrap() - 1e-6);
            prop_assert!(m <= s.max().unwrap() + 1e-6);
            prop_assert!(s.variance() >= 0.0);
        }
    }
}
