//! Availability / SLA accounting.
//!
//! Fig 9 of the paper reports service availability collapsing under
//! attack-induced power throttling. We define availability the way the
//! paper measures it: the fraction of *legitimate* requests that complete
//! within their deadline. Requests can end in one of four ways:
//! completed in time, completed late (deadline miss), dropped by a
//! network element (firewall / token bucket), or timed out in queue.

use serde::{Deserialize, Serialize};

/// Terminal state of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// Completed within the deadline.
    OnTime,
    /// Completed, but after the deadline.
    Late,
    /// Discarded before service (firewall block, token-bucket drop).
    Dropped,
    /// Abandoned after waiting longer than the client timeout.
    TimedOut,
}

/// Counts request outcomes and derives availability metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlaTracker {
    on_time: u64,
    late: u64,
    dropped: u64,
    timed_out: u64,
}

impl SlaTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one request outcome.
    pub fn record(&mut self, outcome: RequestOutcome) {
        match outcome {
            RequestOutcome::OnTime => self.on_time += 1,
            RequestOutcome::Late => self.late += 1,
            RequestOutcome::Dropped => self.dropped += 1,
            RequestOutcome::TimedOut => self.timed_out += 1,
        }
    }

    /// Merge another tracker (parallel reduction).
    pub fn merge(&mut self, other: &SlaTracker) {
        self.on_time += other.on_time;
        self.late += other.late;
        self.dropped += other.dropped;
        self.timed_out += other.timed_out;
    }

    /// Total requests observed.
    pub fn total(&self) -> u64 {
        self.on_time + self.late + self.dropped + self.timed_out
    }

    /// Requests completed on time.
    pub fn on_time(&self) -> u64 {
        self.on_time
    }

    /// Requests completed late.
    pub fn late(&self) -> u64 {
        self.late
    }

    /// Requests dropped before service.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Requests that timed out waiting.
    pub fn timed_out(&self) -> u64 {
        self.timed_out
    }

    /// Availability = on-time completions / total (1.0 when no traffic:
    /// an idle service is available).
    pub fn availability(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            self.on_time as f64 / total as f64
        }
    }

    /// Fraction of requests that completed at all (on time or late).
    pub fn completion_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            (self.on_time + self.late) as f64 / total as f64
        }
    }

    /// Fraction of requests dropped before service — the metric the paper
    /// uses against the Token scheme ("abandons more than 60% of the
    /// packages").
    pub fn drop_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn idle_service_is_available() {
        let t = SlaTracker::new();
        assert_eq!(t.availability(), 1.0);
        assert_eq!(t.completion_rate(), 1.0);
        assert_eq!(t.drop_rate(), 0.0);
    }

    #[test]
    fn mixed_outcomes() {
        let mut t = SlaTracker::new();
        for _ in 0..6 {
            t.record(RequestOutcome::OnTime);
        }
        t.record(RequestOutcome::Late);
        t.record(RequestOutcome::Dropped);
        t.record(RequestOutcome::Dropped);
        t.record(RequestOutcome::TimedOut);
        assert_eq!(t.total(), 10);
        assert!((t.availability() - 0.6).abs() < 1e-12);
        assert!((t.completion_rate() - 0.7).abs() < 1e-12);
        assert!((t.drop_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = SlaTracker::new();
        let mut b = SlaTracker::new();
        a.record(RequestOutcome::OnTime);
        b.record(RequestOutcome::Dropped);
        b.record(RequestOutcome::Late);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.on_time(), 1);
        assert_eq!(a.late(), 1);
        assert_eq!(a.dropped(), 1);
    }

    proptest! {
        #[test]
        fn prop_rates_bounded(outcomes in proptest::collection::vec(0u8..4, 0..200)) {
            let mut t = SlaTracker::new();
            for &o in &outcomes {
                t.record(match o {
                    0 => RequestOutcome::OnTime,
                    1 => RequestOutcome::Late,
                    2 => RequestOutcome::Dropped,
                    _ => RequestOutcome::TimedOut,
                });
            }
            prop_assert_eq!(t.total(), outcomes.len() as u64);
            for rate in [t.availability(), t.completion_rate(), t.drop_rate()] {
                prop_assert!((0.0..=1.0).contains(&rate));
            }
            prop_assert!(t.availability() <= t.completion_rate() + 1e-12);
        }
    }
}
