//! Time-stamped series and time-weighted step functions.
//!
//! Two recorders:
//!
//! * [`TimeSeries`] — plain `(t, value)` samples, for plotting traces
//!   (Fig 3 power profiles, Fig 18 battery capacity).
//! * [`TimeWeighted`] — a right-continuous step function with exact
//!   time-weighted integrals and averages. Server power is a step
//!   function of simulation events (arrivals, completions, DVFS
//!   transitions), so integrating it exactly — rather than sampling —
//!   makes energy accounting immune to the sampling interval.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// A plain time-stamped sample series (append-only, non-decreasing time).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a sample. Panics if `t` precedes the last sample.
    pub fn record(&mut self, t: SimTime, value: f64) {
        assert!(value.is_finite(), "non-finite sample: {value}");
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time went backwards: {t} < {last}");
        }
        self.points.push((t, value));
    }

    /// All samples, in time order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest sample value.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Smallest sample value.
    pub fn min_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Arithmetic mean of sample values (unweighted).
    pub fn mean_value(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Downsample to at most `max_points` by keeping every k-th sample
    /// (always keeping the last). Used when exporting long traces to CSV.
    pub fn thin(&self, max_points: usize) -> Vec<(SimTime, f64)> {
        assert!(max_points >= 2);
        let n = self.points.len();
        if n <= max_points {
            return self.points.clone();
        }
        let stride = n.div_ceil(max_points);
        let mut out: Vec<_> = self.points.iter().step_by(stride).copied().collect();
        if out.last() != self.points.last() {
            out.push(*self.points.last().expect("non-empty"));
        }
        out
    }
}

/// A right-continuous step function of time with exact integration.
///
/// `set(t, v)` declares that the signal holds value `v` from `t` until the
/// next `set`. Integrals are exact sums of `value × dwell-time`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    current: f64,
    since: SimTime,
    /// Running integral of value·dt in (value-unit × seconds).
    integral: f64,
    start: SimTime,
    /// Time-weighted peak (the largest value ever held).
    peak: f64,
    /// Complete step history (t, new_value), for trace export.
    history: Vec<(SimTime, f64)>,
    keep_history: bool,
}

impl TimeWeighted {
    /// Start a step function holding `initial` from time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        assert!(initial.is_finite());
        TimeWeighted {
            current: initial,
            since: start,
            integral: 0.0,
            start,
            peak: initial,
            history: vec![(start, initial)],
            keep_history: true,
        }
    }

    /// Disable history retention (hot loops that only need integrals).
    pub fn without_history(mut self) -> Self {
        self.keep_history = false;
        self.history.clear();
        self.history.shrink_to_fit();
        self
    }

    /// Current held value.
    pub fn value(&self) -> f64 {
        self.current
    }

    /// Change the held value at time `t`. Panics if `t` precedes the last
    /// change.
    pub fn set(&mut self, t: SimTime, value: f64) {
        assert!(value.is_finite(), "non-finite value: {value}");
        let dwell = t.since(self.since); // panics if time went backwards
        self.integral += self.current * dwell.as_secs_f64();
        self.current = value;
        self.since = t;
        self.peak = self.peak.max(value);
        if self.keep_history {
            self.history.push((t, value));
        }
    }

    /// Add `delta` to the held value at time `t`.
    pub fn add(&mut self, t: SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(t, v);
    }

    /// Integral of the signal from `start` through `t` (value-unit × s).
    pub fn integral_until(&self, t: SimTime) -> f64 {
        let dwell = t.since(self.since);
        self.integral + self.current * dwell.as_secs_f64()
    }

    /// Time-weighted average over `[start, t]`.
    pub fn average_until(&self, t: SimTime) -> f64 {
        let span = t.since(self.start).as_secs_f64();
        if span == 0.0 {
            self.current
        } else {
            self.integral_until(t) / span
        }
    }

    /// Largest value ever held.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Step history, if retained.
    pub fn history(&self) -> &[(SimTime, f64)] {
        &self.history
    }

    /// Sample the step function at fixed intervals over `[start, end]`,
    /// returning `(t, value)` pairs — what the figure harness plots.
    pub fn sample(&self, end: SimTime, interval: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(self.keep_history, "sampling requires history");
        assert!(!interval.is_zero());
        let mut out = Vec::new();
        let mut t = self.start;
        let mut idx = 0;
        let mut held = self
            .history
            .first()
            .map(|&(_, v)| v)
            .unwrap_or(self.current);
        while t <= end {
            while idx < self.history.len() && self.history[idx].0 <= t {
                held = self.history[idx].1;
                idx += 1;
            }
            out.push((t, held));
            t = t.saturating_add(interval);
            if t == SimTime::MAX {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn timeseries_basics() {
        let mut ts = TimeSeries::new();
        ts.record(s(0), 1.0);
        ts.record(s(1), 3.0);
        ts.record(s(1), 2.0); // same timestamp is fine
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.max_value(), Some(3.0));
        assert_eq!(ts.min_value(), Some(1.0));
        assert!((ts.mean_value() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn timeseries_rejects_backwards() {
        let mut ts = TimeSeries::new();
        ts.record(s(2), 1.0);
        ts.record(s(1), 1.0);
    }

    #[test]
    fn thin_keeps_endpoints() {
        let mut ts = TimeSeries::new();
        for i in 0..100 {
            ts.record(s(i), i as f64);
        }
        let thinned = ts.thin(10);
        assert!(thinned.len() <= 11);
        assert_eq!(thinned[0], (s(0), 0.0));
        assert_eq!(*thinned.last().unwrap(), (s(99), 99.0));
    }

    #[test]
    fn thin_noop_when_short() {
        let mut ts = TimeSeries::new();
        ts.record(s(0), 1.0);
        assert_eq!(ts.thin(10).len(), 1);
    }

    #[test]
    fn step_integral_exact() {
        let mut tw = TimeWeighted::new(s(0), 100.0);
        tw.set(s(10), 50.0); // 100 W for 10 s = 1000 J
        tw.set(s(30), 200.0); // 50 W for 20 s = 1000 J
        // 200 W for 5 s = 1000 J
        assert!((tw.integral_until(s(35)) - 3000.0).abs() < 1e-9);
        assert!((tw.average_until(s(35)) - 3000.0 / 35.0).abs() < 1e-9);
        assert_eq!(tw.peak(), 200.0);
    }

    #[test]
    fn average_at_start_is_current() {
        let tw = TimeWeighted::new(s(5), 42.0);
        assert_eq!(tw.average_until(s(5)), 42.0);
    }

    #[test]
    fn add_accumulates() {
        let mut tw = TimeWeighted::new(s(0), 10.0);
        tw.add(s(1), 5.0);
        assert_eq!(tw.value(), 15.0);
        tw.add(s(2), -15.0);
        assert_eq!(tw.value(), 0.0);
        assert!((tw.integral_until(s(2)) - (10.0 + 15.0)).abs() < 1e-9);
    }

    #[test]
    fn sample_reconstructs_steps() {
        let mut tw = TimeWeighted::new(s(0), 1.0);
        tw.set(s(2), 2.0);
        tw.set(s(4), 3.0);
        let samples = tw.sample(s(5), SimDuration::from_secs(1));
        let values: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn without_history_still_integrates() {
        let mut tw = TimeWeighted::new(s(0), 10.0).without_history();
        tw.set(s(10), 20.0);
        assert!((tw.integral_until(s(20)) - (100.0 + 200.0)).abs() < 1e-9);
        assert!(tw.history().is_empty());
    }

    #[test]
    fn zero_duration_steps() {
        let mut tw = TimeWeighted::new(s(0), 5.0);
        tw.set(s(0), 7.0); // instantaneous re-set at the same instant
        tw.set(s(1), 0.0);
        assert!((tw.integral_until(s(1)) - 7.0).abs() < 1e-9);
    }
}
