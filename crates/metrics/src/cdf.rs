//! Exact empirical CDFs.
//!
//! The paper plots power CDFs constantly (Figs 4b, 5a, 10). Sample counts
//! there are modest (one reading per second over minutes), so exact CDFs
//! from stored samples are affordable and avoid binning artifacts in the
//! plots the harness regenerates.

use serde::{Deserialize, Serialize};

/// An exact empirical cumulative distribution function.
///
/// Samples are accumulated unsorted; the CDF is materialized lazily on
/// first query and invalidated on the next insert.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ecdf {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl Ecdf {
    /// Empty CDF.
    pub fn new() -> Self {
        Ecdf {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Empty CDF with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Ecdf {
            samples: Vec::with_capacity(cap),
            sorted: true,
        }
    }

    /// Build directly from samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut e = Ecdf::new();
        for s in samples {
            e.record(s);
        }
        e
    }

    /// Add a sample. Panics on non-finite input.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample: {x}");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// `P(X <= x)`: fraction of samples at or below `x`.
    pub fn cdf(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        // partition_point gives the count of samples <= x.
        let cnt = self.samples.partition_point(|&s| s <= x);
        cnt as f64 / self.samples.len() as f64
    }

    /// Inverse CDF: the smallest sample `v` with `P(X <= v) >= q`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Evaluate the CDF on `points` evenly spaced values across
    /// `[lo, hi]`, returning `(x, P(X<=x))` pairs — the series the
    /// experiment harness prints for every CDF figure.
    pub fn curve(&mut self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2 && hi > lo);
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.cdf(x))
            })
            .collect()
    }

    /// The full sorted-sample staircase as `(value, cumulative_fraction)`.
    pub fn staircase(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.samples.len();
        self.samples
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_cdf_is_zero() {
        let mut e = Ecdf::new();
        assert_eq!(e.cdf(10.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert!(e.is_empty());
    }

    #[test]
    fn simple_fractions() {
        let mut e = Ecdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut e = Ecdf::from_samples([10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.quantile(0.2), Some(10.0));
        assert_eq!(e.quantile(0.21), Some(20.0));
        assert_eq!(e.quantile(0.5), Some(30.0));
        assert_eq!(e.quantile(1.0), Some(50.0));
    }

    #[test]
    fn duplicates_handled() {
        let mut e = Ecdf::from_samples([5.0, 5.0, 5.0]);
        assert_eq!(e.cdf(4.9), 0.0);
        assert_eq!(e.cdf(5.0), 1.0);
        assert_eq!(e.quantile(0.5), Some(5.0));
    }

    #[test]
    fn interleaved_insert_query() {
        let mut e = Ecdf::new();
        e.record(2.0);
        assert_eq!(e.cdf(2.0), 1.0);
        e.record(1.0);
        assert_eq!(e.cdf(1.5), 0.5);
        e.record(3.0);
        assert!((e.cdf(2.5) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_and_bounded() {
        let mut e = Ecdf::from_samples((1..=100).map(|i| i as f64));
        let curve = e.curve(0.0, 120.0, 25);
        assert_eq!(curve.len(), 25);
        let mut prev = -1.0;
        for &(_, p) in &curve {
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev);
            prev = p;
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn staircase_ends_at_one() {
        let mut e = Ecdf::from_samples([3.0, 1.0, 2.0]);
        let st = e.staircase();
        assert_eq!(st, vec![(1.0, 1.0 / 3.0), (2.0, 2.0 / 3.0), (3.0, 1.0)]);
    }

    #[test]
    fn mean_matches() {
        let e = Ecdf::from_samples([1.0, 2.0, 3.0]);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone(xs in proptest::collection::vec(-100f64..100.0, 1..200),
                             probes in proptest::collection::vec(-150f64..150.0, 2..20)) {
            let mut e = Ecdf::from_samples(xs);
            let mut sorted_probes = probes.clone();
            sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = 0.0;
            for &p in &sorted_probes {
                let v = e.cdf(p);
                prop_assert!(v >= prev);
                prop_assert!((0.0..=1.0).contains(&v));
                prev = v;
            }
        }

        #[test]
        fn prop_quantile_cdf_inverse(xs in proptest::collection::vec(-100f64..100.0, 1..200),
                                     q in 0.01f64..1.0) {
            let mut e = Ecdf::from_samples(xs);
            let v = e.quantile(q).unwrap();
            // CDF at the q-quantile must reach at least q.
            prop_assert!(e.cdf(v) >= q - 1e-9);
        }
    }
}
