//! # dcmetrics — measurement substrate for the Anti-DOPE reproduction
//!
//! Every number reported in the paper's evaluation (response-time
//! percentiles, power CDFs, battery capacity curves, normalized energy,
//! availability) is computed by this crate:
//!
//! * [`OnlineSummary`] — Welford mean/variance plus min/max, O(1) memory.
//! * [`LatencyHistogram`] — log-binned histogram with bounded relative
//!   error, for tail-latency percentiles over millions of samples.
//! * [`P2Quantile`] — the P² streaming quantile estimator for
//!   single-quantile probes with O(1) memory.
//! * [`Ecdf`] — exact empirical CDFs (the paper plots many power CDFs).
//! * [`TimeSeries`] / [`TimeWeighted`] — step-function recorders with
//!   time-weighted averages and resampling, for power and battery traces.
//! * [`EnergyMeter`] — exact integration of step power signals into
//!   joules / watt-hours.
//! * [`SlaTracker`] — availability bookkeeping (completions, deadline
//!   misses, drops).
//! * [`export`] — CSV and aligned-markdown rendering used by the
//!   experiment harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod availability;
pub mod cdf;
pub mod energy;
pub mod export;
pub mod histogram;
pub mod quantile;
pub mod summary;
pub mod timeseries;

pub use availability::{RequestOutcome, SlaTracker};
pub use export::Table;
pub use cdf::Ecdf;
pub use energy::EnergyMeter;
pub use histogram::LatencyHistogram;
pub use quantile::P2Quantile;
pub use summary::OnlineSummary;
pub use timeseries::{TimeSeries, TimeWeighted};
