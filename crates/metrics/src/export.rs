//! Tabular export: CSV files and aligned text tables.
//!
//! The experiment harness (crates/bench `experiments` binary) regenerates
//! every figure and table of the paper as (a) a CSV for plotting and (b)
//! an aligned table printed to stdout. Both renderers live here so the
//! formats stay consistent across all 17 experiments.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-oriented table: a header row plus data rows of equal
/// width, all pre-formatted as strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a pre-formatted row. Panics if the width disagrees with the
    /// header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Append a row of displayable cells.
    pub fn row<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Format a float with 3 significant decimals — the house style for
    /// all experiment output.
    pub fn fmt_f64(x: f64) -> String {
        if x == 0.0 {
            "0".to_string()
        } else if x.abs() >= 100.0 {
            format!("{x:.1}")
        } else if x.abs() >= 1.0 {
            format!("{x:.2}")
        } else {
            format!("{x:.4}")
        }
    }

    /// Render as CSV (RFC-4180 quoting for cells containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        fn quote(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self.header.iter().map(|c| quote(c)).collect();
        let _ = writeln!(out, "{}", header.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| quote(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Write the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }

    /// Render as an aligned text table with the title on top.
    pub fn to_text(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:width$}", cells[i], width = widths[i]);
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", render_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X", &["scheme", "p90_ms"]);
        t.row(&["Capping".to_string(), "236.0".to_string()]);
        t.row(&["Anti-DOPE".to_string(), "75.3".to_string()]);
        t
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "scheme,p90_ms");
        assert_eq!(lines[1], "Capping,236.0");
        assert_eq!(lines[2], "Anti-DOPE,75.3");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("q", &["a"]);
        t.row(&["x,y".to_string()]);
        t.row(&["say \"hi\"".to_string()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn text_alignment() {
        let text = sample().to_text();
        assert!(text.starts_with("## Fig X"));
        let lines: Vec<&str> = text.lines().collect();
        // header and rows align on columns
        assert!(lines[1].starts_with("scheme"));
        assert!(lines[2].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("Capping"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_f64_styles() {
        assert_eq!(Table::fmt_f64(0.0), "0");
        assert_eq!(Table::fmt_f64(0.12345), "0.1235");
        assert_eq!(Table::fmt_f64(5.678), "5.68");
        assert_eq!(Table::fmt_f64(123.456), "123.5");
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("dcmetrics_export_test");
        let path = dir.join("sub/fig.csv");
        sample().write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("Anti-DOPE"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", &["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_csv(), "a\n");
    }
}
