//! The live control-plane daemon, end to end:
//!
//! ```text
//! # 1. record a control-plane trace from a fixed-seed chaos sim
//! cargo run -p liveplane --example live_daemon -- record /tmp/antidope.jsonl
//!
//! # 2. replay it through the live pipeline and check sim/live parity
//! cargo run -p liveplane --example live_daemon -- replay /tmp/antidope.jsonl
//!
//! # 3. run the wall-clock daemon against a mock-sysfs tree, with a
//! #    deliberately laggy sensor agent (staleness bridging on show);
//! #    press Enter for graceful shutdown
//! cargo run -p liveplane --example live_daemon -- live /tmp/antidope.jsonl 100
//! ```
//!
//! The `live` mode spawns a publisher thread playing the role of a
//! node-local sensor agent: it writes each recorded slot into the
//! RAPL/ACPI-shaped file tree on the wall cadence (third argument,
//! milliseconds per slot, default 100), skipping a beat every seventh
//! slot so the daemon's last-good bridging is visible in the summary.

use antidope::{record_experiment, ControlTrace, ExperimentConfig, SchemeKind, SlotTick};
use liveplane::{
    LiveDaemon, RecordingActuation, ReplayClock, ReplayTelemetry, SysfsActuation, SysfsTelemetry,
    WallClock,
};
use powercap::BudgetLevel;
use simcore::faults::{CrashEvent, FaultConfig};
use simcore::{SimDuration, SimTime};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::Duration;
use workloads::source::TrafficSource;

/// The demo experiment: Anti-DOPE under a low budget with chaos faults,
/// 60 control slots, fixed seed.
fn demo_exp() -> ExperimentConfig {
    let mut exp = antidope::testutil::quick_exp(SchemeKind::AntiDope, BudgetLevel::Low, 60, 2019);
    exp.cluster.faults = Some(FaultConfig {
        sensor_dropout_p: 0.2,
        actuator_loss_p: 0.3,
        crashes: vec![CrashEvent { node: 1, at: SimTime::from_secs(20) }],
        reboot_after: SimDuration::from_secs(8),
        ..FaultConfig::default()
    });
    exp
}

fn demo_sources(exp: &ExperimentConfig) -> Vec<Box<dyn TrafficSource>> {
    let horizon = SimTime::ZERO + exp.duration;
    vec![
        antidope::testutil::normal_source(exp.seed, horizon, 60.0),
        antidope::testutil::attack_source(exp.seed, 300.0, SimTime::from_secs(5), horizon),
    ]
}

fn record(path: &Path) {
    let exp = demo_exp();
    println!("recording {} control slots (seed {})...", 60, exp.seed);
    let (report, trace) = record_experiment(&exp, &demo_sources);
    trace.write_jsonl(path).expect("write trace");
    println!(
        "wrote {} slots to {} — peak {:.0} W, energy {:.0} J, {} retries",
        trace.slots.len(),
        path.display(),
        trace.footer.peak_true_w,
        trace.footer.energy_j,
        trace.footer.retries,
    );
    println!("sim peak power: {:.0} W", report.power.peak_w);
}

fn replay(path: &Path) {
    let trace = ControlTrace::read_jsonl(path).expect("read trace");
    let exp = trace.header.experiment.clone();
    let mut daemon = LiveDaemon::new(
        &exp,
        ReplayClock::from_trace(&trace),
        ReplayTelemetry::from_trace(&trace),
        RecordingActuation::new(),
    );
    let summary = daemon.run().expect("replay transports cannot fail");
    println!(
        "replayed {} slots: {} actions, {} retries, {} emergency, {} watchdog",
        summary.slots, summary.actions, summary.retries, summary.emergency_slots,
        summary.watchdog_slots,
    );
    let parity = format!("{:?}", summary.footer()) == format!("{:?}", trace.footer);
    println!(
        "sim/live parity: {}",
        if parity { "byte-identical ✓" } else { "MISMATCH ✗" }
    );
    if !parity {
        println!("  sim:  {:?}", trace.footer);
        println!("  live: {:?}", summary.footer());
        std::process::exit(1);
    }
}

fn live(path: &Path, period_ms: u64) {
    let trace = ControlTrace::read_jsonl(path).expect("read trace");
    let exp = trace.header.experiment.clone();
    let dir = std::env::temp_dir().join(format!("antidope-live-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let period = Duration::from_millis(period_ms);

    // Graceful shutdown: Enter (or EOF) stops the loop before the next
    // tick; the same flag interrupts the wall clock's sleep and the
    // publisher thread.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clock = WallClock::new(period, exp.cluster.control_slot)
        .with_max_slots(trace.slots.len() as u64)
        .with_shutdown(stop.clone());
    let mut daemon = LiveDaemon::new(
        &exp,
        clock,
        SysfsTelemetry::new(&dir, exp.cluster.servers),
        SysfsActuation::new(&dir),
    );
    {
        let stop = stop.clone();
        let daemon_stop = daemon.shutdown_handle();
        std::thread::spawn(move || {
            let mut line = String::new();
            let _ = std::io::stdin().read_line(&mut line);
            println!("shutdown requested — finishing current slot");
            stop.store(true, Ordering::Relaxed);
            daemon_stop.store(true, Ordering::Relaxed);
        });
    }

    // The "sensor agent": publishes each recorded slot on the wall
    // cadence, oversleeping every 7th slot so some daemon ticks find
    // the tree stale and bridge on the held sample.
    let publisher = {
        let dir = dir.clone();
        let slots: Vec<(SlotTick, antidope::PlaneSample)> = trace
            .slots
            .iter()
            .map(|s| {
                (
                    SlotTick { slot: s.slot, now: s.now, missed_deadline: false },
                    s.sample.clone(),
                )
            })
            .collect();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let writer = liveplane::MockSysfsWriter::new(&dir);
            for (tick, sample) in &slots {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if tick.slot % 7 == 3 {
                    std::thread::sleep(period); // miss a beat
                }
                writer.publish(tick, sample).expect("publish slot");
                std::thread::sleep(period);
            }
        })
    };

    println!(
        "live daemon: {} slots at {period_ms} ms/slot over {} (Enter to stop)",
        trace.slots.len(),
        dir.display()
    );
    let summary = daemon.run().expect("sysfs transports healthy");
    publisher.join().expect("publisher thread");
    println!(
        "processed {} passes ({} bridged, {} blind, {} missed deadlines)",
        summary.slots, summary.bridged_slots, summary.blind_slots, summary.missed_deadlines,
    );
    println!(
        "emitted {} actions, {} retries; peak {:.0} W",
        summary.actions, summary.retries, summary.peak_true_w,
    );
    println!("command journal: {}", dir.join("actuate/commands.log").display());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: live_daemon record|replay|live <trace.jsonl> [period_ms]";
    match args.get(1).map(String::as_str) {
        Some("record") => record(&path_arg(&args, usage)),
        Some("replay") => replay(&path_arg(&args, usage)),
        Some("live") => {
            let period = args.get(3).map_or(100, |s| s.parse().expect("period_ms"));
            live(&path_arg(&args, usage), period);
        }
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    }
}

fn path_arg(args: &[String], usage: &str) -> PathBuf {
    PathBuf::from(args.get(2).unwrap_or_else(|| {
        eprintln!("{usage}");
        std::process::exit(2);
    }))
}
