//! Sim/live parity: record a control-plane trace from a fixed-seed DES
//! run, replay it through the live daemon's pipeline, and require the
//! emitted view/decision sequence and the accounting footer to be
//! byte-identical (Debug-render equality, which for `f64` is
//! shortest-roundtrip — bit equality) to what the simulator produced.
//!
//! Three cells cover the engine matrix: the legacy event-driven engine
//! without faults, the legacy engine hardened with chaos faults and the
//! EW-RLS profiler, and the sharded engine with a telemetry blackout.
//!
//! The Token scheme is deliberately absent: its bucket state advances
//! on every *admitted request* in the dataplane, not once per control
//! slot, so a slot-rate trace cannot reconstruct it. Every other scheme
//! decides purely from slot telemetry and replays exactly.

use antidope::testutil::{attack_source, normal_source, quick_exp};
use antidope::{
    record_experiment, ConfigError, ControlTrace, ExperimentConfig, SchemeKind, SimReport,
    SlotTick, TelemetryTransport, TRACE_SCHEMA_VERSION,
};
use liveplane::{
    render_decision, LiveDaemon, ManualClock, MockSysfsWriter, NullActuation, RecordingActuation,
    ReplayClock, ReplayTelemetry, SlotDisposition, SysfsActuation, SysfsTelemetry,
};
use powercap::BudgetLevel;
use profiler::ProfilerConfig;
use simcore::faults::{CrashEvent, FaultConfig};
use simcore::{SimDuration, SimTime};
use workloads::source::TrafficSource;

fn sources(exp: &ExperimentConfig) -> Vec<Box<dyn TrafficSource>> {
    let horizon = SimTime::ZERO + exp.duration;
    vec![
        normal_source(exp.seed, horizon, 60.0),
        attack_source(exp.seed, 300.0, SimTime::from_secs(5), horizon),
    ]
}

fn chaos(exp: &mut ExperimentConfig) {
    exp.cluster.faults = Some(FaultConfig {
        sensor_dropout_p: 0.2,
        actuator_loss_p: 0.3,
        crashes: vec![CrashEvent { node: 1, at: SimTime::from_secs(20) }],
        reboot_after: SimDuration::from_secs(8),
        ..FaultConfig::default()
    });
}

/// Record `exp`, replay through the daemon, and require byte parity of
/// every per-slot view/decision record, the footer, and the profiler
/// accounting against the sim side.
fn assert_parity(exp: &ExperimentConfig) -> (SimReport, ControlTrace) {
    let (report, trace) = record_experiment(exp, &sources);
    assert!(!trace.slots.is_empty(), "trace must record slots");

    // The JSONL encoding round-trips bit-exactly first.
    let back = ControlTrace::from_jsonl_str(&trace.to_jsonl()).expect("well-formed trace");
    assert_eq!(format!("{trace:?}"), format!("{back:?}"), "jsonl round trip");

    let mut daemon = LiveDaemon::new(
        exp,
        ReplayClock::from_trace(&trace),
        ReplayTelemetry::from_trace(&trace),
        RecordingActuation::new(),
    );
    let summary = daemon.run().expect("replay transports cannot fail");
    assert_eq!(summary.journal.len(), trace.slots.len(), "one outcome per recorded slot");
    assert_eq!(daemon.actuation().applied.len(), trace.slots.len());
    for (out, rec) in summary.journal.iter().zip(&trace.slots) {
        assert_eq!(out.disposition, SlotDisposition::Fresh);
        assert_eq!(
            format!("{:?}", out.view.as_ref().expect("fresh slot has a view")),
            format!("{:?}", rec.view),
            "view parity at slot {}",
            rec.slot
        );
        assert_eq!(
            format!("{:?}", out.decisions.as_ref().expect("fresh slot has decisions")),
            format!("{:?}", rec.decisions),
            "decision parity at slot {}",
            rec.slot
        );
    }
    assert_eq!(
        format!("{:?}", summary.footer()),
        format!("{:?}", trace.footer),
        "footer parity"
    );
    assert_eq!(
        format!("{:?}", summary.profiler),
        format!("{:?}", report.profiler),
        "profiler accounting parity"
    );
    (report, trace)
}

#[test]
fn parity_legacy_no_faults() {
    let exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Medium, 60, 2019);
    let (report, trace) = assert_parity(&exp);
    assert_eq!(trace.slots.len(), 60);
    assert!(report.power.peak_w > 0.0);
}

#[test]
fn parity_legacy_chaos_with_profiler() {
    let mut exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Low, 60, 2019);
    chaos(&mut exp);
    exp.cluster.profiler = Some(ProfilerConfig::default());
    let (report, trace) = assert_parity(&exp);
    assert!(report.profiler.is_some(), "profiler cell must report attribution");
    assert!(trace.footer.retries > 0, "actuator loss must surface read-back retries");
}

#[test]
fn parity_sharded_chaos_blackout() {
    let mut exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Medium, 60, 2019);
    exp.cluster.shards = 2;
    exp.cluster.faults = Some(FaultConfig {
        sensor_dropout_p: 0.2,
        actuator_loss_p: 0.3,
        blackouts: vec![(SimTime::from_secs(10), SimTime::from_secs(20))],
        ..FaultConfig::default()
    });
    let (_, trace) = assert_parity(&exp);
    assert_eq!(trace.slots.len(), 60);
}

#[test]
fn schema_mismatch_is_a_typed_error() {
    let exp = quick_exp(SchemeKind::Capping, BudgetLevel::Medium, 10, 2019);
    let (_, trace) = record_experiment(&exp, &sources);
    let jsonl = trace.to_jsonl();
    let bumped = jsonl.replacen("\"schema\":1", "\"schema\":99", 1);
    assert_ne!(bumped, jsonl, "header must carry the schema field");
    match ControlTrace::from_jsonl_str(&bumped) {
        Err(ConfigError::TraceSchema { found, supported }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, TRACE_SCHEMA_VERSION);
        }
        other => panic!("expected a typed schema error, got {other:?}"),
    }
}

#[test]
fn sysfs_backend_round_trips_and_matches_the_trace() {
    let mut exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Low, 30, 2019);
    chaos(&mut exp);
    let (_, trace) = record_experiment(&exp, &sources);
    let dir = std::env::temp_dir().join(format!("liveplane-sysfs-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let writer = MockSysfsWriter::new(&dir);
    let ticks: Vec<SlotTick> = trace
        .slots
        .iter()
        .map(|s| SlotTick { slot: s.slot, now: s.now, missed_deadline: false })
        .collect();
    let mut daemon = LiveDaemon::new(
        &exp,
        ManualClock::new(ticks.clone()),
        SysfsTelemetry::new(&dir, exp.cluster.servers),
        SysfsActuation::new(&dir),
    );
    // Interleave: the "sensor agent" publishes each slot, then the
    // daemon ticks — never stale, every slot fresh off the file tree.
    let mut expected_log = String::new();
    for (tick, rec) in ticks.iter().zip(&trace.slots) {
        writer.publish(tick, &rec.sample).expect("publish slot");
        let out = daemon.step().expect("step").expect("a slot outcome");
        assert_eq!(out.disposition, SlotDisposition::Fresh);
        assert_eq!(
            format!("{:?}", out.decisions.as_ref().expect("fresh")),
            format!("{:?}", rec.decisions),
            "sysfs decision parity at slot {}",
            rec.slot
        );
        expected_log.push_str(&render_decision(rec.now, &rec.decisions));
    }
    // Every float survived the file round trip bit-exactly.
    let last = ticks.last().expect("non-empty trace");
    let mut reader = SysfsTelemetry::new(&dir, exp.cluster.servers);
    let sample = reader.sample(last).expect("read published slot");
    let rec_sample = &trace.slots.last().expect("non-empty").sample;
    assert_eq!(format!("{sample:?}"), format!("{rec_sample:?}"), "sysfs sample round trip");
    // The DVFS command journal equals the sim-side rendering.
    let log = std::fs::read_to_string(dir.join("actuate/commands.log")).expect("command log");
    assert_eq!(log, expected_log);
    assert_eq!(format!("{:?}", daemon.summary().footer()), format!("{:?}", trace.footer));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_bridges_stale_slots_then_goes_blind() {
    let mut exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Low, 20, 2019);
    chaos(&mut exp);
    let (_, trace) = record_experiment(&exp, &sources);
    let dir = std::env::temp_dir().join(format!("liveplane-stale-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Publish only slot 0; every later tick finds the counter lagging.
    let first = &trace.slots[0];
    let t0 = SlotTick { slot: first.slot, now: first.now, missed_deadline: false };
    MockSysfsWriter::new(&dir).publish(&t0, &first.sample).expect("publish slot 0");

    let window = exp.cluster.control.telemetry_staleness_slots;
    let slot_d = exp.cluster.control_slot;
    let ticks: Vec<SlotTick> = (0..=window + 1)
        .map(|k| SlotTick { slot: k, now: first.now + slot_d * k, missed_deadline: k > 0 })
        .collect();
    let mut daemon = LiveDaemon::new(
        &exp,
        ManualClock::new(ticks),
        SysfsTelemetry::new(&dir, exp.cluster.servers),
        NullActuation,
    );
    let summary = daemon.run().expect("stale slots are handled, not errors");
    let dispositions: Vec<SlotDisposition> =
        summary.journal.iter().map(|o| o.disposition).collect();
    assert_eq!(dispositions[0], SlotDisposition::Fresh);
    // Within the window (boundary inclusive) the held sample bridges...
    for (k, d) in dispositions.iter().enumerate().take(window as usize + 1).skip(1) {
        assert_eq!(*d, SlotDisposition::Bridged, "slot {k} within the window");
    }
    // ...one slot past it the daemon is blind and skips the pass.
    assert_eq!(dispositions[window as usize + 1], SlotDisposition::Blind);
    assert_eq!(summary.bridged_slots, window);
    assert_eq!(summary.blind_slots, 1);
    assert_eq!(summary.missed_deadlines, window + 1);
    assert_eq!(summary.slots, window + 1, "fresh + bridged passes");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_telemetry_exhaustion_ends_the_run_cleanly() {
    let exp = quick_exp(SchemeKind::Shaving, BudgetLevel::Medium, 10, 2019);
    let (_, trace) = record_experiment(&exp, &sources);
    let mut ticks: Vec<SlotTick> = trace
        .slots
        .iter()
        .map(|s| SlotTick { slot: s.slot, now: s.now, missed_deadline: false })
        .collect();
    let last = *ticks.last().expect("non-empty");
    ticks.push(SlotTick {
        slot: last.slot + 1,
        now: last.now + exp.cluster.control_slot,
        missed_deadline: false,
    });
    let mut daemon = LiveDaemon::new(
        &exp,
        ManualClock::new(ticks),
        ReplayTelemetry::from_trace(&trace),
        NullActuation,
    );
    let summary = daemon.run().expect("exhaustion is a clean end");
    assert_eq!(summary.slots, trace.slots.len() as u64);
    assert_eq!(format!("{:?}", summary.footer()), format!("{:?}", trace.footer));
}
