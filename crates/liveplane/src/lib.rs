//! # liveplane — the control plane, lifted out of the simulator
//!
//! The staged Anti-DOPE control plane (Sense → Filter → Learn → Decide
//! → Act) was born inside the discrete-event engines. This crate hosts
//! the **identical** [`antidope::ControlPipeline`] behind the pluggable
//! [`antidope::ControlClock`] / [`antidope::TelemetryTransport`] /
//! [`antidope::ActuationTransport`] seams, so the same decision logic
//! runs against three backends:
//!
//! | backend | clock | telemetry | actuation |
//! |---|---|---|---|
//! | DES engines | implicit (`Ev::Slot`) | simulator nodes | simulator nodes |
//! | trace replay | [`ReplayClock`] | [`ReplayTelemetry`] | [`RecordingActuation`] |
//! | mock sysfs | [`WallClock`] / [`ManualClock`] | [`SysfsTelemetry`] | [`SysfsActuation`] |
//!
//! The headline guarantee is **sim/live parity**: record a trace from a
//! fixed-seed DES run ([`antidope::record_experiment`]), replay it
//! through [`LiveDaemon`], and every emitted
//! [`antidope::ViewRecord`]/[`antidope::DecisionRecord`] — plus the
//! accounting footer — is byte-identical to what the simulator's
//! control plane produced. The `tests/parity.rs` harness enforces this
//! in debug and release.
//!
//! See the `live_daemon` example for the tick loop with wall-clock
//! cadence, staleness bridging, and graceful shutdown.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod daemon;
pub mod replay;
pub mod sysfs;

pub use clock::{ManualClock, ReplayClock, WallClock};
pub use daemon::{LiveDaemon, LiveSummary, SlotDisposition, SlotOutcome};
pub use replay::{NullActuation, RecordingActuation, ReplayTelemetry};
pub use sysfs::{render_decision, MockSysfsWriter, SysfsActuation, SysfsTelemetry};
