//! [`ControlClock`] backends: trace cadence, manual test cadence, and a
//! real wall clock with deadline detection.

use antidope::{ControlClock, ControlTrace, SlotTick};
use simcore::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Replays the slot cadence of a recorded trace: one tick per recorded
/// slot, at the recorded timestamp, never missing a deadline — exactly
/// the schedule the DES engine's `Ev::Slot` events followed.
#[derive(Debug, Clone)]
pub struct ReplayClock {
    ticks: Vec<(u64, SimTime)>,
    at: usize,
}

impl ReplayClock {
    /// Clock over the slots of `trace`, in recorded order.
    pub fn from_trace(trace: &ControlTrace) -> Self {
        ReplayClock {
            ticks: trace.slots.iter().map(|s| (s.slot, s.now)).collect(),
            at: 0,
        }
    }

    /// Ticks remaining.
    pub fn remaining(&self) -> usize {
        self.ticks.len() - self.at
    }
}

impl ControlClock for ReplayClock {
    fn next_slot(&mut self) -> Option<SlotTick> {
        let &(slot, now) = self.ticks.get(self.at)?;
        self.at += 1;
        Some(SlotTick { slot, now, missed_deadline: false })
    }
}

/// A hand-fed clock for tests: yields exactly the ticks it was given.
#[derive(Debug, Clone)]
pub struct ManualClock {
    ticks: Vec<SlotTick>,
    at: usize,
}

impl ManualClock {
    /// Clock over `ticks` in order.
    pub fn new(ticks: Vec<SlotTick>) -> Self {
        ManualClock { ticks, at: 0 }
    }
}

impl ControlClock for ManualClock {
    fn next_slot(&mut self) -> Option<SlotTick> {
        let t = self.ticks.get(self.at).copied()?;
        self.at += 1;
        Some(t)
    }
}

/// A real wall clock: slot `k` is due `k × period` after the first
/// tick. `next_slot` sleeps until the deadline (in short interruptible
/// increments so a shutdown flag is honored promptly) and flags
/// [`SlotTick::missed_deadline`] when the caller shows up more than
/// half a period late — the signal the daemon uses to treat the slot's
/// telemetry as suspect.
///
/// The control-plane time axis stays simulated: slot `k` maps to
/// `SimTime::ZERO + k × control_slot`, so pipeline state (staleness
/// windows, retry deadlines) is wall-rate-independent and a wall run is
/// comparable to a sim trace slot-for-slot.
#[derive(Debug)]
pub struct WallClock {
    /// Wall-time slot period.
    period: Duration,
    /// Simulated-time slot period (the experiment's `control_slot`).
    sim_period: SimDuration,
    /// Stop after this many slots; `None` runs until shutdown.
    max_slots: Option<u64>,
    next: u64,
    start: Option<Instant>,
    shutdown: Option<Arc<AtomicBool>>,
}

impl WallClock {
    /// A wall clock ticking every `period` of real time, mapping slots
    /// onto a simulated axis with `sim_period` spacing.
    pub fn new(period: Duration, sim_period: SimDuration) -> Self {
        WallClock {
            period,
            sim_period,
            max_slots: None,
            next: 0,
            start: None,
            shutdown: None,
        }
    }

    /// Stop after `n` slots.
    pub fn with_max_slots(mut self, n: u64) -> Self {
        self.max_slots = Some(n);
        self
    }

    /// Stop (returning `None` from the next `next_slot`) once `flag`
    /// becomes true; also interrupts an in-progress sleep.
    pub fn with_shutdown(mut self, flag: Arc<AtomicBool>) -> Self {
        self.shutdown = Some(flag);
        self
    }

    fn stopped(&self) -> bool {
        self.shutdown
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

impl ControlClock for WallClock {
    fn next_slot(&mut self) -> Option<SlotTick> {
        if self.stopped() || self.max_slots.is_some_and(|m| self.next >= m) {
            return None;
        }
        let slot = self.next;
        self.next += 1;
        let start = *self.start.get_or_insert_with(Instant::now);
        let deadline = start + self.period * u32::try_from(slot).unwrap_or(u32::MAX);
        // Interruptible sleep toward the deadline.
        loop {
            if self.stopped() {
                return None;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            std::thread::sleep(left.min(Duration::from_millis(20)));
        }
        let late = Instant::now().saturating_duration_since(deadline);
        Some(SlotTick {
            slot,
            now: SimTime::ZERO + self.sim_period * slot,
            missed_deadline: late > self.period / 2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_yields_its_ticks_then_ends() {
        let t0 = SlotTick { slot: 0, now: SimTime::from_secs(1), missed_deadline: false };
        let t1 = SlotTick { slot: 1, now: SimTime::from_secs(2), missed_deadline: true };
        let mut c = ManualClock::new(vec![t0, t1]);
        assert_eq!(c.next_slot(), Some(t0));
        assert_eq!(c.next_slot(), Some(t1));
        assert_eq!(c.next_slot(), None);
    }

    #[test]
    fn wall_clock_honors_max_slots_and_maps_to_sim_time() {
        let mut c = WallClock::new(Duration::from_millis(1), SimDuration::from_secs(1))
            .with_max_slots(3);
        let ticks: Vec<SlotTick> = std::iter::from_fn(|| c.next_slot()).collect();
        assert_eq!(ticks.len(), 3);
        assert_eq!(ticks[2].slot, 2);
        assert_eq!(ticks[2].now, SimTime::from_secs(2));
    }

    #[test]
    fn wall_clock_shutdown_stops_the_schedule() {
        let flag = Arc::new(AtomicBool::new(false));
        let mut c = WallClock::new(Duration::from_millis(1), SimDuration::from_secs(1))
            .with_shutdown(Arc::clone(&flag));
        assert!(c.next_slot().is_some());
        flag.store(true, Ordering::Relaxed);
        assert_eq!(c.next_slot(), None);
    }
}
