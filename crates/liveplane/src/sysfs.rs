//! Mock-sysfs transports: telemetry read from a RAPL/ACPI-shaped
//! directory tree, actuation written back as DVFS command files.
//!
//! The tree mirrors the shape of a Linux power-management sysfs (one
//! ASCII value per file, `powercap`-style package counters, per-node
//! `cpufreq` attributes, an ACPI-battery directory), but values are
//! decimal strings formatted with Rust's shortest-roundtrip `{:?}` so
//! every `f64` survives a write→read cycle bit-exactly — the property
//! the sim/live parity harness depends on.
//!
//! Layout under the root directory (`<i>` = node index):
//!
//! ```text
//! control/slot                      published slot counter (write barrier)
//! control/now_us                    slot timestamp, µs
//! control/forgets                   lines "<node> full|learn"
//! control/readings_present          0|1 — per-node sensors delivered?
//! control/readback_present          0|1 — P-state read-back delivered?
//! rapl/package/power_w              aggregate true power, W
//! rapl/package/energy_j             cumulative load energy, J
//! node<i>/online                    0|1 (0 = node dead)
//! node<i>/rapl/power_w              per-node sensor, W; empty = dropout
//! node<i>/cpufreq/scaling_cur_pstate  read-back commanded state
//! node<i>/obs/{utilization,intensity,gamma,beta}
//! node<i>/obs/{target,inflight,learn_power_w}
//! node<i>/obs/mix                   lines "<url> <count>"
//! battery/{soc,stored_j,discharge_w,charge_w}
//! actuate/commands.log              appended by [`SysfsActuation`]
//! node<i>/cpufreq/scaling_setspeed  last commanded state
//! ```
//!
//! The writer publishes `control/slot` **last**, so a reader that sees
//! the counter advanced is guaranteed a complete slot; a reader that
//! polls before the writer publishes gets a typed
//! [`TransportError::Stale`] and lets the staleness machinery bridge.

use antidope::{
    ActionRecord, ActuationTransport, BatteryObs, DecisionRecord, Forget, ForgetKind, NodeObs,
    PlaneSample, SlotTick, TelemetryTransport, TransportError,
};
use simcore::SimTime;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::str::FromStr;

// ---------------------------------------------------------------------
// Shared path + codec helpers
// ---------------------------------------------------------------------

fn node_dir(root: &Path, i: usize) -> PathBuf {
    root.join(format!("node{i}"))
}

fn io_err(p: &Path, e: impl std::fmt::Display) -> TransportError {
    TransportError::Io(format!("{}: {e}", p.display()))
}

fn read_str(p: &Path) -> Result<String, TransportError> {
    std::fs::read_to_string(p).map_err(|e| io_err(p, e))
}

fn parse_file<T: FromStr>(p: &Path) -> Result<T, TransportError>
where
    T::Err: std::fmt::Display,
{
    read_str(p)?
        .trim()
        .parse()
        .map_err(|e| TransportError::Malformed(format!("{}: {e}", p.display())))
}

/// `f64` or absent: an empty (or whitespace-only) file means `None`.
fn parse_opt_f64(p: &Path) -> Result<Option<f64>, TransportError> {
    let s = read_str(p)?;
    let t = s.trim();
    if t.is_empty() {
        return Ok(None);
    }
    t.parse()
        .map(Some)
        .map_err(|e| TransportError::Malformed(format!("{}: {e}", p.display())))
}

fn parse_flag(p: &Path) -> Result<bool, TransportError> {
    match read_str(p)?.trim() {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(TransportError::Malformed(format!(
            "{}: expected 0 or 1, got {other:?}",
            p.display()
        ))),
    }
}

// ---------------------------------------------------------------------
// Writer (the mock sensor agent)
// ---------------------------------------------------------------------

/// Publishes [`PlaneSample`]s into the directory tree — the role a
/// node-local sensor agent plays in a real deployment. One `publish`
/// per slot; the slot counter is written last as the completion
/// barrier.
#[derive(Debug, Clone)]
pub struct MockSysfsWriter {
    root: PathBuf,
}

impl MockSysfsWriter {
    /// A writer rooted at `root` (created on first publish).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        MockSysfsWriter { root: root.into() }
    }

    /// Write every attribute file for `sample`, then advance the
    /// published slot counter to `tick.slot`.
    pub fn publish(&self, tick: &SlotTick, sample: &PlaneSample) -> std::io::Result<()> {
        let r = &self.root;
        std::fs::create_dir_all(r.join("control"))?;
        std::fs::create_dir_all(r.join("rapl/package"))?;
        std::fs::create_dir_all(r.join("battery"))?;

        write_val(&r.join("control/now_us"), tick.now.as_micros())?;
        let mut forgets = String::new();
        for f in &sample.forgets {
            let kind = match f.kind {
                ForgetKind::Full => "full",
                ForgetKind::Learn => "learn",
            };
            let _ = writeln!(forgets, "{} {kind}", f.node);
        }
        std::fs::write(r.join("control/forgets"), forgets)?;
        write_val(&r.join("control/readings_present"), u8::from(sample.readings.is_some()))?;
        write_val(&r.join("control/readback_present"), u8::from(sample.readback.is_some()))?;
        write_f64(&r.join("rapl/package/power_w"), sample.true_power_w)?;
        write_f64(&r.join("rapl/package/energy_j"), sample.energy_j)?;

        for (i, obs) in sample.nodes.iter().enumerate() {
            let nd = node_dir(r, i);
            std::fs::create_dir_all(nd.join("rapl"))?;
            std::fs::create_dir_all(nd.join("cpufreq"))?;
            std::fs::create_dir_all(nd.join("obs"))?;
            write_val(&nd.join("online"), u8::from(!sample.node_dead[i]))?;
            let reading = sample.readings.as_ref().and_then(|r| r[i]);
            write_opt_f64(&nd.join("rapl/power_w"), reading)?;
            let readback = sample.readback.as_ref().map_or(0, |r| r[i]);
            write_val(&nd.join("cpufreq/scaling_cur_pstate"), readback)?;
            write_f64(&nd.join("obs/utilization"), obs.utilization)?;
            write_f64(&nd.join("obs/intensity"), obs.intensity)?;
            write_f64(&nd.join("obs/gamma"), obs.gamma)?;
            write_f64(&nd.join("obs/beta"), obs.beta)?;
            write_val(&nd.join("obs/target"), obs.target)?;
            write_val(&nd.join("obs/inflight"), obs.inflight)?;
            write_opt_f64(&nd.join("obs/learn_power_w"), obs.learn_power_w)?;
            let mut mix = String::new();
            for &(url, count) in &obs.mix {
                let _ = writeln!(mix, "{url} {count}");
            }
            std::fs::write(nd.join("obs/mix"), mix)?;
        }

        write_f64(&r.join("battery/soc"), sample.battery.soc)?;
        write_f64(&r.join("battery/stored_j"), sample.battery.stored_j)?;
        write_f64(&r.join("battery/discharge_w"), sample.battery.discharge_w)?;
        write_f64(&r.join("battery/charge_w"), sample.battery.charge_w)?;

        // Publish barrier: the counter moves only after every attribute
        // above is on disk.
        write_val(&r.join("control/slot"), tick.slot)
    }
}

fn write_val(p: &Path, v: impl std::fmt::Display) -> std::io::Result<()> {
    std::fs::write(p, format!("{v}\n"))
}

fn write_f64(p: &Path, v: f64) -> std::io::Result<()> {
    std::fs::write(p, format!("{v:?}\n"))
}

fn write_opt_f64(p: &Path, v: Option<f64>) -> std::io::Result<()> {
    match v {
        Some(v) => write_f64(p, v),
        None => std::fs::write(p, ""),
    }
}

// ---------------------------------------------------------------------
// Reader (the daemon's telemetry transport)
// ---------------------------------------------------------------------

/// Reads one [`PlaneSample`] per slot from the directory tree. The
/// published slot counter is the freshness signal: a read returns
/// [`TransportError::Stale`] when the counter has not advanced past
/// what this reader already served (or nothing was ever published) —
/// the latest published sample is otherwise served as current
/// telemetry, even if its slot number trails the control plane's tick.
#[derive(Debug, Clone)]
pub struct SysfsTelemetry {
    root: PathBuf,
    servers: usize,
    last_served: Option<u64>,
}

impl SysfsTelemetry {
    /// A reader over `root` expecting `servers` node directories.
    pub fn new(root: impl Into<PathBuf>, servers: usize) -> Self {
        SysfsTelemetry { root: root.into(), servers, last_served: None }
    }

    fn read_node(&self, i: usize) -> Result<(NodeObs, bool, Option<f64>, u8), TransportError> {
        let nd = node_dir(&self.root, i);
        let online = parse_flag(&nd.join("online"))?;
        let reading = parse_opt_f64(&nd.join("rapl/power_w"))?;
        let readback: u8 = parse_file(&nd.join("cpufreq/scaling_cur_pstate"))?;
        let mix_text = read_str(&nd.join("obs/mix"))?;
        let mut mix = Vec::new();
        for line in mix_text.lines().filter(|l| !l.trim().is_empty()) {
            let mut parts = line.split_whitespace();
            let (Some(u), Some(c)) = (parts.next(), parts.next()) else {
                return Err(TransportError::Malformed(format!(
                    "{}: bad mix line {line:?}",
                    nd.join("obs/mix").display()
                )));
            };
            let url = u.parse().map_err(|e| {
                TransportError::Malformed(format!("{}: url {e}", nd.join("obs/mix").display()))
            })?;
            let count = c.parse().map_err(|e| {
                TransportError::Malformed(format!("{}: count {e}", nd.join("obs/mix").display()))
            })?;
            mix.push((url, count));
        }
        let obs = NodeObs {
            utilization: parse_file(&nd.join("obs/utilization"))?,
            intensity: parse_file(&nd.join("obs/intensity"))?,
            gamma: parse_file(&nd.join("obs/gamma"))?,
            beta: parse_file(&nd.join("obs/beta"))?,
            target: parse_file(&nd.join("obs/target"))?,
            inflight: parse_file(&nd.join("obs/inflight"))?,
            learn_power_w: parse_opt_f64(&nd.join("obs/learn_power_w"))?,
            mix,
        };
        Ok((obs, !online, reading, readback))
    }
}

impl TelemetryTransport for SysfsTelemetry {
    fn sample(&mut self, tick: &SlotTick) -> Result<PlaneSample, TransportError> {
        let r = &self.root;
        let slot_path = r.join("control/slot");
        // A missing counter file means the sensor agent has not
        // published anything yet — stale, not fatal.
        let published: u64 = match std::fs::read_to_string(&slot_path) {
            Ok(s) => s.trim().parse().map_err(|e| {
                TransportError::Malformed(format!("{}: {e}", slot_path.display()))
            })?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(TransportError::Stale { have: 0, want: tick.slot });
            }
            Err(e) => return Err(io_err(&slot_path, e)),
        };
        if self.last_served == Some(published) {
            return Err(TransportError::Stale { have: published, want: tick.slot });
        }
        self.last_served = Some(published);
        let readings_present = parse_flag(&r.join("control/readings_present"))?;
        let readback_present = parse_flag(&r.join("control/readback_present"))?;
        let mut nodes = Vec::with_capacity(self.servers);
        let mut node_dead = Vec::with_capacity(self.servers);
        let mut readings = Vec::with_capacity(self.servers);
        let mut readback = Vec::with_capacity(self.servers);
        for i in 0..self.servers {
            let (obs, dead, reading, rb) = self.read_node(i)?;
            nodes.push(obs);
            node_dead.push(dead);
            readings.push(reading);
            readback.push(rb);
        }
        let forgets_text = read_str(&r.join("control/forgets"))?;
        let mut forgets = Vec::new();
        for line in forgets_text.lines().filter(|l| !l.trim().is_empty()) {
            let mut parts = line.split_whitespace();
            let (Some(n), Some(k)) = (parts.next(), parts.next()) else {
                return Err(TransportError::Malformed(format!("bad forget line {line:?}")));
            };
            let node = n.parse().map_err(|e| {
                TransportError::Malformed(format!("forget node {n:?}: {e}"))
            })?;
            let kind = match k {
                "full" => ForgetKind::Full,
                "learn" => ForgetKind::Learn,
                other => {
                    return Err(TransportError::Malformed(format!(
                        "unknown forget kind {other:?}"
                    )))
                }
            };
            forgets.push(Forget { node, kind });
        }
        Ok(PlaneSample {
            true_power_w: parse_file(&r.join("rapl/package/power_w"))?,
            readings: readings_present.then_some(readings),
            nodes,
            readback: readback_present.then_some(readback),
            node_dead,
            battery: BatteryObs {
                soc: parse_file(&r.join("battery/soc"))?,
                stored_j: parse_file(&r.join("battery/stored_j"))?,
                discharge_w: parse_file(&r.join("battery/discharge_w"))?,
                charge_w: parse_file(&r.join("battery/charge_w"))?,
            },
            energy_j: parse_file(&r.join("rapl/package/energy_j"))?,
            forgets,
            // The sysfs transport exposes no per-rack feeds; the live
            // plane runs the flat (single-feed) control pipeline.
            rack_power_w: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------
// Actuation sink
// ---------------------------------------------------------------------

/// Renders one slot's decision as the exact command-log lines
/// [`SysfsActuation`] appends — exposed so the parity harness can
/// render a sim-side trace identically and byte-compare logs.
pub fn render_decision(now: SimTime, decision: &DecisionRecord) -> String {
    let us = now.as_micros();
    let mut out = String::new();
    for &(node, pstate) in &decision.retries {
        let _ = writeln!(out, "{us} retry {node} {pstate}");
    }
    for a in &decision.actions {
        match *a {
            ActionRecord::SetPState { node, target } => {
                let _ = writeln!(out, "{us} set_pstate {node} {target}");
            }
            ActionRecord::SetPowerLimit { node, limit_w } => match limit_w {
                Some(w) => {
                    let _ = writeln!(out, "{us} power_limit {node} {w:?}");
                }
                None => {
                    let _ = writeln!(out, "{us} power_limit {node} -");
                }
            },
            ActionRecord::BatteryDischarge { watts } => {
                let _ = writeln!(out, "{us} battery_discharge {watts:?}");
            }
            ActionRecord::BatteryCharge { watts } => {
                let _ = writeln!(out, "{us} battery_charge {watts:?}");
            }
        }
    }
    out
}

/// Writes decided commands back into the tree: an append-only
/// `actuate/commands.log` journal plus a per-node
/// `cpufreq/scaling_setspeed` attribute holding the last commanded
/// P-state (read-back sweep retries included, exactly as the sim's
/// enact path re-issues them).
#[derive(Debug, Clone)]
pub struct SysfsActuation {
    root: PathBuf,
}

impl SysfsActuation {
    /// An actuator rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        SysfsActuation { root: root.into() }
    }

    /// Path of the append-only command journal.
    pub fn log_path(&self) -> PathBuf {
        self.root.join("actuate/commands.log")
    }

    fn set_speed(&self, node: usize, target: u8) -> Result<(), TransportError> {
        let dir = node_dir(&self.root, node).join("cpufreq");
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let p = dir.join("scaling_setspeed");
        write_val(&p, target).map_err(|e| io_err(&p, e))
    }
}

impl ActuationTransport for SysfsActuation {
    fn apply(&mut self, now: SimTime, decision: &DecisionRecord) -> Result<(), TransportError> {
        let dir = self.root.join("actuate");
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let p = self.log_path();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&p)
            .map_err(|e| io_err(&p, e))?;
        f.write_all(render_decision(now, decision).as_bytes())
            .map_err(|e| io_err(&p, e))?;
        for &(node, pstate) in &decision.retries {
            self.set_speed(node, pstate)?;
        }
        for a in &decision.actions {
            if let ActionRecord::SetPState { node, target } = *a {
                self.set_speed(node, target)?;
            }
        }
        Ok(())
    }
}
