//! The live control-plane host: a tick loop that drives the identical
//! staged [`ControlPipeline`] from a [`ControlClock`] and a pair of
//! transports, with last-good staleness bridging and graceful shutdown.

use antidope::health::staleness::LastGood;
use antidope::{
    ActuationTransport, ClusterConfig, ConditionRecord, ControlClock, ControlPipeline,
    DecisionRecord, ExperimentConfig, PlaneSample, ShardGuard, SlotTick, TelemetryTransport,
    TraceFooter, TransportError, ViewRecord,
};
use profiler::ProfilerReport;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How one slot was fed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotDisposition {
    /// Fresh telemetry arrived and drove the pass.
    Fresh,
    /// Telemetry was stale; the pass ran on the held last-good sample
    /// (within the staleness window).
    Bridged,
    /// Telemetry was stale beyond the window: the pass was skipped
    /// entirely and nothing was actuated.
    Blind,
}

/// One processed tick: what fed it and what the pipeline emitted.
/// `view`/`decisions` are `None` exactly for [`SlotDisposition::Blind`]
/// slots.
#[derive(Debug, Clone)]
pub struct SlotOutcome {
    /// The clock tick.
    pub tick: SlotTick,
    /// How the slot was fed.
    pub disposition: SlotDisposition,
    /// Filter-stage output, when the pass ran.
    pub view: Option<ViewRecord>,
    /// Sweep + Decide output, when the pass ran.
    pub decisions: Option<DecisionRecord>,
}

/// End-of-run accounting, shaped to compare directly against a recorded
/// trace's [`TraceFooter`] via [`LiveSummary::footer`].
#[derive(Debug, Clone)]
pub struct LiveSummary {
    /// Pipeline passes executed (fresh + bridged).
    pub slots: u64,
    /// Passes that ran on a held last-good sample.
    pub bridged_slots: u64,
    /// Ticks skipped because staleness exceeded the window.
    pub blind_slots: u64,
    /// Ticks the clock flagged as past their deadline.
    pub missed_deadlines: u64,
    /// Actions emitted across all passes.
    pub actions: u64,
    /// Read-back retries emitted across all passes.
    pub retries: u64,
    /// Passes the monitor judged `Emergency`.
    pub emergency_slots: u64,
    /// Passes with the coverage watchdog engaged.
    pub watchdog_slots: u64,
    /// Last telemetry energy counter seen, joules.
    pub energy_j: f64,
    /// Peak true aggregate power seen, watts.
    pub peak_true_w: f64,
    /// Final profiler accounting, when the experiment enables EW-RLS
    /// attribution.
    pub profiler: Option<ProfilerReport>,
    /// Every processed tick in order.
    pub journal: Vec<SlotOutcome>,
}

impl LiveSummary {
    /// The summary in trace-footer form. For a replay of a recorded
    /// trace the result must be byte-identical (Debug-render equal) to
    /// the trace's own footer — that is the parity criterion.
    pub fn footer(&self) -> TraceFooter {
        TraceFooter {
            slots: self.slots,
            actions: self.actions,
            retries: self.retries,
            emergency_slots: self.emergency_slots,
            watchdog_slots: self.watchdog_slots,
            energy_j: self.energy_j,
            peak_true_w: self.peak_true_w,
        }
    }
}

/// The live daemon: clock + telemetry + actuation around the identical
/// [`ControlPipeline`] (and, for sharded experiments, the identical
/// [`ShardGuard`]) the DES engines drive.
///
/// Staleness handling: every fresh sample is also held in a
/// [`LastGood`] hold whose window is the experiment's
/// `control_slot × telemetry_staleness_slots`. A stale tick within the
/// window re-runs the pass on the held sample (its forget events
/// cleared, so they are never applied twice); past the window the tick
/// is skipped as blind — the same boundary the in-pipeline
/// [`antidope::TelemetryHealth`] applies per node.
pub struct LiveDaemon<C, T, A> {
    cfg: ClusterConfig,
    clock: C,
    telemetry: T,
    actuation: A,
    pipeline: ControlPipeline,
    guard: Option<ShardGuard>,
    hold: LastGood<PlaneSample>,
    shutdown: Arc<AtomicBool>,
    journal: Vec<SlotOutcome>,
    slots: u64,
    bridged_slots: u64,
    blind_slots: u64,
    missed_deadlines: u64,
    actions: u64,
    retries: u64,
    emergency_slots: u64,
    watchdog_slots: u64,
    energy_j: f64,
    peak_true_w: f64,
}

impl<C, T, A> LiveDaemon<C, T, A>
where
    C: ControlClock,
    T: TelemetryTransport,
    A: ActuationTransport,
{
    /// A daemon for `exp`, assembling the pipeline and shard guard
    /// exactly as the DES engines would.
    pub fn new(exp: &ExperimentConfig, clock: C, telemetry: T, actuation: A) -> Self {
        let pipeline = ControlPipeline::for_experiment(exp);
        let guard = ShardGuard::for_experiment(exp);
        let cfg = exp.cluster.clone();
        let window = cfg.control_slot * cfg.control.telemetry_staleness_slots;
        LiveDaemon {
            clock,
            telemetry,
            actuation,
            pipeline,
            guard,
            hold: LastGood::new(1, window),
            cfg,
            shutdown: Arc::new(AtomicBool::new(false)),
            journal: Vec::new(),
            slots: 0,
            bridged_slots: 0,
            blind_slots: 0,
            missed_deadlines: 0,
            actions: 0,
            retries: 0,
            emergency_slots: 0,
            watchdog_slots: 0,
            energy_j: 0.0,
            peak_true_w: 0.0,
        }
    }

    /// Flag that stops the loop before the next tick (set it from a
    /// signal handler or another thread for graceful shutdown).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The actuation transport (e.g. to inspect a recorded command
    /// sequence after the run).
    pub fn actuation(&self) -> &A {
        &self.actuation
    }

    /// Outcomes processed so far.
    pub fn journal(&self) -> &[SlotOutcome] {
        &self.journal
    }

    /// Process one tick. `Ok(None)` means the run is over: the clock's
    /// schedule is exhausted, the telemetry source ended
    /// ([`TransportError::Exhausted`]), or shutdown was requested.
    /// I/O and malformed-data transport errors propagate.
    pub fn step(&mut self) -> Result<Option<SlotOutcome>, TransportError> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Ok(None);
        }
        let Some(tick) = self.clock.next_slot() else {
            return Ok(None);
        };
        if tick.missed_deadline {
            self.missed_deadlines += 1;
        }
        let (sample, disposition) = match self.telemetry.sample(&tick) {
            Ok(s) => {
                let mut held = s.clone();
                // A bridged re-run must not re-apply this slot's forget
                // events: they were consumed by the fresh pass.
                held.forgets.clear();
                self.hold.update(0, tick.now, held);
                (s, SlotDisposition::Fresh)
            }
            Err(TransportError::Stale { .. }) => match self.hold.get(0, tick.now) {
                Some(held) => (held.clone(), SlotDisposition::Bridged),
                None => {
                    self.blind_slots += 1;
                    let out = SlotOutcome {
                        tick,
                        disposition: SlotDisposition::Blind,
                        view: None,
                        decisions: None,
                    };
                    self.journal.push(out.clone());
                    return Ok(Some(out));
                }
            },
            Err(TransportError::Exhausted) => return Ok(None),
            Err(e) => return Err(e),
        };
        let (view, decisions) =
            self.pipeline
                .run_live_slot(tick.now, &sample, &self.cfg, self.guard.as_mut());
        self.actuation.apply(tick.now, &decisions)?;
        self.slots += 1;
        if disposition == SlotDisposition::Bridged {
            self.bridged_slots += 1;
        }
        self.actions += decisions.actions.len() as u64;
        self.retries += decisions.retries.len() as u64;
        if view.condition == ConditionRecord::Emergency {
            self.emergency_slots += 1;
        }
        if view.watchdog_engaged {
            self.watchdog_slots += 1;
        }
        self.energy_j = sample.energy_j;
        self.peak_true_w = self.peak_true_w.max(sample.true_power_w);
        let out = SlotOutcome {
            tick,
            disposition,
            view: Some(view),
            decisions: Some(decisions),
        };
        self.journal.push(out.clone());
        Ok(Some(out))
    }

    /// Run the tick loop to completion and return the summary. The
    /// journal moves into the summary (a daemon is single-shot).
    pub fn run(&mut self) -> Result<LiveSummary, TransportError> {
        while self.step()?.is_some() {}
        Ok(self.summary())
    }

    /// The accounting summary, draining the journal.
    pub fn summary(&mut self) -> LiveSummary {
        LiveSummary {
            slots: self.slots,
            bridged_slots: self.bridged_slots,
            blind_slots: self.blind_slots,
            missed_deadlines: self.missed_deadlines,
            actions: self.actions,
            retries: self.retries,
            emergency_slots: self.emergency_slots,
            watchdog_slots: self.watchdog_slots,
            energy_j: self.energy_j,
            peak_true_w: self.peak_true_w,
            profiler: self.pipeline.learn.as_ref().map(|l| l.report()),
            journal: std::mem::take(&mut self.journal),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_footer_maps_the_trace_footer_fields() {
        let s = LiveSummary {
            slots: 7,
            bridged_slots: 1,
            blind_slots: 2,
            missed_deadlines: 3,
            actions: 40,
            retries: 5,
            emergency_slots: 6,
            watchdog_slots: 2,
            energy_j: 123.5,
            peak_true_w: 9000.25,
            profiler: None,
            journal: Vec::new(),
        };
        let f = s.footer();
        assert_eq!(
            (f.slots, f.actions, f.retries, f.emergency_slots, f.watchdog_slots),
            (7, 40, 5, 6, 2)
        );
        assert_eq!((f.energy_j, f.peak_true_w), (123.5, 9000.25));
    }
}
