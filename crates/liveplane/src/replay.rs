//! Trace-replay transports: telemetry read from a recorded
//! [`ControlTrace`], actuation captured in memory for comparison.

use antidope::{
    ActuationTransport, ControlTrace, DecisionRecord, PlaneSample, SlotTick, TelemetryTransport,
    TransportError,
};
use simcore::SimTime;

/// Feeds the recorded per-slot [`PlaneSample`]s of a trace back to the
/// pipeline, one per tick, in recorded order.
#[derive(Debug, Clone)]
pub struct ReplayTelemetry {
    slots: Vec<(u64, PlaneSample)>,
    at: usize,
}

impl ReplayTelemetry {
    /// Telemetry over the samples of `trace`.
    pub fn from_trace(trace: &ControlTrace) -> Self {
        ReplayTelemetry {
            slots: trace
                .slots
                .iter()
                .map(|s| (s.slot, s.sample.clone()))
                .collect(),
            at: 0,
        }
    }
}

impl TelemetryTransport for ReplayTelemetry {
    fn sample(&mut self, tick: &SlotTick) -> Result<PlaneSample, TransportError> {
        let (slot, sample) = self.slots.get(self.at).ok_or(TransportError::Exhausted)?;
        if *slot != tick.slot {
            // The trace has no record for this tick — the clock and the
            // telemetry were built from different traces.
            return Err(TransportError::Malformed(format!(
                "trace slot {slot} does not match clock tick {}",
                tick.slot
            )));
        }
        self.at += 1;
        Ok(sample.clone())
    }
}

/// Captures every applied decision in memory — the replay side's
/// "actuator", letting the parity harness byte-compare the emitted
/// command sequence against the sim's recorded one.
#[derive(Debug, Clone, Default)]
pub struct RecordingActuation {
    /// `(slot timestamp, decision)` in application order.
    pub applied: Vec<(SimTime, DecisionRecord)>,
}

impl RecordingActuation {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ActuationTransport for RecordingActuation {
    fn apply(&mut self, now: SimTime, decision: &DecisionRecord) -> Result<(), TransportError> {
        self.applied.push((now, decision.clone()));
        Ok(())
    }
}

/// Discards every decision — for daemon runs where only the summary
/// matters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullActuation;

impl ActuationTransport for NullActuation {
    fn apply(&mut self, _now: SimTime, _decision: &DecisionRecord) -> Result<(), TransportError> {
        Ok(())
    }
}
