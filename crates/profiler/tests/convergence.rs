//! Property tests: the online profiler converges to the ground-truth
//! labels from clean synthetic observations, for any draw of intensities
//! and mixes.

use netsim::request::UrlId;
use profiler::{PowerProfiler, ProfilerConfig};
use proptest::prelude::*;

/// Synthetic nominal-V/F node power for a mix under true intensities.
fn power_of(c: &ProfilerConfig, u: f64, mix: &[(UrlId, u32)], truth: &[f64]) -> f64 {
    let total: u32 = mix.iter().map(|&(_, n)| n).sum();
    let mean_i: f64 = mix
        .iter()
        .map(|&(url, n)| truth[url.0 as usize] * n as f64 / total as f64)
        .sum();
    c.idle_w + u.powf(c.util_exponent) * mean_i * c.dynamic_scale_w
}

proptest! {
    /// Stationary traffic, no faults: within a bounded number of monitor
    /// ticks every URL's classification matches the ground-truth label
    /// `intensity > threshold`, provided the intensity clears the
    /// hysteresis band (inside the band the profiler deliberately
    /// abstains and the default class applies).
    #[test]
    fn classification_converges_to_truth(
        intensities in proptest::collection::vec(0.0f64..=1.0, 2..6),
        utils in proptest::collection::vec(0.2f64..=1.0, 3),
        seed in 0u64..1000,
    ) {
        let cfg = ProfilerConfig::default();
        let mut p = PowerProfiler::new(cfg.clone());
        let n_urls = intensities.len();
        // Deterministic pseudo-random mixes from the seed: three nodes,
        // each holding a rotating subset of the URLs.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        const TICKS: u32 = 40;
        for _ in 0..TICKS {
            for (node, &u) in utils.iter().enumerate() {
                let mut mix: Vec<(UrlId, u32)> = Vec::new();
                for url in 0..n_urls {
                    // Each URL present on ~2/3 of node-ticks with count 1..4.
                    let r = next();
                    if (r % 3) != (node as u64 % 3) || url == (node % n_urls) {
                        mix.push((UrlId(url as u16), 1 + (r >> 8) as u32 % 4));
                    }
                }
                if mix.is_empty() {
                    continue;
                }
                let y = power_of(&cfg, u, &mix, &intensities);
                p.observe_node(Some(y), u, true, &mix);
            }
            p.end_tick();
        }
        for (url, &i) in intensities.iter().enumerate() {
            let url = UrlId(url as u16);
            // Only decidable outside the hysteresis band and once sampled.
            if p.confidence(url).map(|(_, _, n)| n).unwrap_or(0) < cfg.min_samples as u64 {
                continue;
            }
            if i > cfg.threshold + cfg.hysteresis {
                prop_assert!(p.list().is_suspect(url),
                    "url {url:?} with intensity {i} should be suspect; est={:?}", p.estimate(url));
            } else if i < cfg.threshold - cfg.hysteresis {
                prop_assert!(!p.list().is_suspect(url),
                    "url {url:?} with intensity {i} should be innocent; est={:?}", p.estimate(url));
            }
        }
    }

    /// Estimates themselves converge: with every URL regularly observed,
    /// the learned intensities land within a tight tolerance of truth.
    #[test]
    fn estimates_converge_pointwise(
        intensities in proptest::collection::vec(0.0f64..=1.0, 2..5),
        u in 0.3f64..=1.0,
    ) {
        let cfg = ProfilerConfig::default();
        let mut p = PowerProfiler::new(cfg.clone());
        let n = intensities.len();
        for tick in 0..30u32 {
            // Rotate through single-URL and paired mixes so the system is
            // fully excited.
            let a = (tick as usize) % n;
            let b = (tick as usize + 1) % n;
            let solo = [(UrlId(a as u16), 2)];
            let pair = [(UrlId(a.min(b) as u16), 1), (UrlId(a.max(b) as u16), 2)];
            p.observe_node(Some(power_of(&cfg, u, &solo, &intensities)), u, true, &solo);
            if a != b {
                p.observe_node(Some(power_of(&cfg, u, &pair, &intensities)), u, true, &pair);
            }
            p.end_tick();
        }
        for (url, &i) in intensities.iter().enumerate() {
            let est = p.estimate(UrlId(url as u16)).expect("url was observed");
            prop_assert!((est - i).abs() < 0.02, "url {url}: est {est} vs truth {i}");
        }
    }
}
