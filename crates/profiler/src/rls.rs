//! Exponentially-weighted recursive least squares over a fixed-capacity
//! coefficient vector.
//!
//! The attribution problem is linear at the nominal V/F point: a node's
//! normalized dynamic power equals the in-flight-share-weighted mean of
//! the per-URL intensities (see [`crate::PowerProfiler`]). Each
//! observation is a sparse feature vector (shares of the URLs resident on
//! one node) and a scalar target; EW-RLS discounts old evidence by a
//! forgetting factor λ so the map tracks drift.
//!
//! Coordinates are recycled: when a URL is evicted, its row and column of
//! the covariance are reset to the prior so the dimension can be reused
//! by a newcomer without contaminating it with the old URL's history.

/// EW-RLS state: coefficients `theta` and inverse-covariance-scaled
/// matrix `P`, dense over a fixed dimension.
#[derive(Debug, Clone)]
pub struct EwRls {
    dim: usize,
    lambda: f64,
    variance_cap: f64,
    /// Coefficient estimates, one per coordinate.
    theta: Vec<f64>,
    /// Covariance matrix, row-major `dim × dim`.
    p: Vec<f64>,
    /// Scratch: `P · x` for the current observation.
    px: Vec<f64>,
}

impl EwRls {
    /// Estimator of `dim` coefficients with prior mean/variance on each.
    pub fn new(dim: usize, lambda: f64, prior_mean: f64, prior_var: f64) -> Self {
        assert!(dim >= 1, "EwRls needs at least one coordinate");
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "forgetting factor must be in (0, 1]"
        );
        let mut p = vec![0.0; dim * dim];
        for i in 0..dim {
            p[i * dim + i] = prior_var;
        }
        EwRls {
            dim,
            lambda,
            variance_cap: prior_var.max(1.0) * 2.0,
            theta: vec![prior_mean; dim],
            p,
            px: vec![0.0; dim],
        }
    }

    /// Override the variance cap (covariance limiting bound).
    pub fn set_variance_cap(&mut self, cap: f64) {
        assert!(cap > 0.0);
        self.variance_cap = cap;
    }

    /// Number of coordinates.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Current estimate of coordinate `i`.
    pub fn theta(&self, i: usize) -> f64 {
        self.theta[i]
    }

    /// Current variance of coordinate `i` (diagonal of `P`).
    pub fn variance(&self, i: usize) -> f64 {
        self.p[i * self.dim + i]
    }

    /// Predicted target for a sparse feature vector.
    pub fn predict(&self, x: &[(usize, f64)]) -> f64 {
        x.iter().map(|&(i, v)| self.theta[i] * v).sum()
    }

    /// Reset coordinate `i` to the prior: zero its covariance row/column,
    /// restore the prior variance, and re-seed the coefficient. Used on
    /// eviction (coordinate recycled for a new URL) and on detected drift
    /// (old evidence no longer valid).
    pub fn reset_coord(&mut self, i: usize, prior_mean: f64, prior_var: f64) {
        for j in 0..self.dim {
            self.p[i * self.dim + j] = 0.0;
            self.p[j * self.dim + i] = 0.0;
        }
        self.p[i * self.dim + i] = prior_var;
        self.theta[i] = prior_mean;
    }

    /// One recursive update with sparse features `x` and target `y`.
    /// Returns the *a-priori* residual `y − x·theta` (the drift signal:
    /// prediction error before this observation was absorbed).
    pub fn observe(&mut self, x: &[(usize, f64)], y: f64) -> f64 {
        let d = self.dim;
        // px = P · x  (x sparse: O(dim · nnz)).
        self.px.iter_mut().for_each(|v| *v = 0.0);
        for &(j, xj) in x {
            for r in 0..d {
                self.px[r] += self.p[r * d + j] * xj;
            }
        }
        // Gain denominator λ + xᵀPx and a-priori residual.
        let s: f64 = x.iter().map(|&(j, xj)| self.px[j] * xj).sum();
        let denom = self.lambda + s;
        let residual = y - self.predict(x);
        // theta += (px / denom) · residual.
        let g = residual / denom;
        for r in 0..d {
            self.theta[r] += self.px[r] * g;
        }
        // P = (P − px·pxᵀ / denom) / λ  (keeps P symmetric by construction).
        let inv_l = 1.0 / self.lambda;
        for r in 0..d {
            let pr = self.px[r] / denom;
            for c in 0..d {
                self.p[r * d + c] = (self.p[r * d + c] - pr * self.px[c]) * inv_l;
            }
        }
        // Covariance limiting: forgetting inflates unexcited directions
        // without bound; clamp each diagonal by a congruence scaling that
        // preserves symmetry and positive-definiteness.
        for i in 0..d {
            let pii = self.p[i * d + i];
            if pii > self.variance_cap {
                let scale = (self.variance_cap / pii).sqrt();
                for j in 0..d {
                    self.p[i * d + j] *= scale;
                    self.p[j * d + i] *= scale;
                }
            }
        }
        residual
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_coefficients_from_clean_mixes() {
        // True coefficients; observations are exact mixtures. With
        // forgetting, the ridge bias of the prior decays like λⁿ/P₀, so
        // after enough persistently exciting rounds the estimates are
        // tight even though each single step only contracts by ≈ λ.
        let truth = [0.98, 0.35, 0.78];
        let mut rls = EwRls::new(3, 0.90, 0.5, 25.0);
        let mixes: [&[(usize, f64)]; 4] = [
            &[(0, 1.0)],
            &[(1, 0.5), (2, 0.5)],
            &[(0, 0.3), (1, 0.7)],
            &[(0, 0.2), (1, 0.3), (2, 0.5)],
        ];
        for round in 0..100 {
            let x = mixes[round % mixes.len()];
            let y: f64 = x.iter().map(|&(i, v)| truth[i] * v).sum();
            rls.observe(x, y);
        }
        for (i, &t) in truth.iter().enumerate() {
            assert!(
                (rls.theta(i) - t).abs() < 1e-4,
                "coord {i}: {} vs {t}",
                rls.theta(i)
            );
        }
    }

    #[test]
    fn residual_shrinks_as_it_learns() {
        let mut rls = EwRls::new(2, 0.95, 0.5, 25.0);
        let x: &[(usize, f64)] = &[(0, 0.6), (1, 0.4)];
        let first = rls.observe(x, 0.9).abs();
        let mut last = first;
        for _ in 0..10 {
            last = rls.observe(x, 0.9).abs();
        }
        assert!(last < first * 0.05, "first={first} last={last}");
    }

    #[test]
    fn forgetting_tracks_a_changed_coefficient() {
        let mut rls = EwRls::new(1, 0.90, 0.5, 25.0);
        for _ in 0..50 {
            rls.observe(&[(0, 1.0)], 0.2);
        }
        assert!((rls.theta(0) - 0.2).abs() < 1e-2, "theta={}", rls.theta(0));
        // The coefficient jumps; forgetting flushes the stale evidence at
        // rate λⁿ, so 50 more observations re-converge onto the new value.
        for _ in 0..50 {
            rls.observe(&[(0, 1.0)], 0.9);
        }
        assert!((rls.theta(0) - 0.9).abs() < 1e-2, "theta={}", rls.theta(0));
    }

    #[test]
    fn unexcited_variance_is_capped() {
        let mut rls = EwRls::new(2, 0.90, 0.5, 4.0);
        rls.set_variance_cap(8.0);
        // Only coordinate 0 is ever excited; coordinate 1's variance must
        // stay bounded despite 1/λ inflation every step.
        for _ in 0..500 {
            rls.observe(&[(0, 1.0)], 0.7);
        }
        assert!(rls.variance(1) <= 8.0 + 1e-9, "var={}", rls.variance(1));
        assert!(rls.variance(0) < 1.0);
    }

    #[test]
    fn reset_coord_restores_the_prior() {
        let mut rls = EwRls::new(2, 0.98, 0.5, 4.0);
        for _ in 0..10 {
            rls.observe(&[(0, 0.5), (1, 0.5)], 0.8);
        }
        rls.reset_coord(1, 0.5, 4.0);
        assert_eq!(rls.theta(1), 0.5);
        assert_eq!(rls.variance(1), 4.0);
        // Cross-covariance cleared.
        assert_eq!(rls.p[1], 0.0);
        assert_eq!(rls.p[2], 0.0);
        // The untouched coordinate keeps its learned state.
        assert!(rls.variance(0) < 4.0);
    }
}
