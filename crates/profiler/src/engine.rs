//! The attribution engine and the adaptive suspect list.
//!
//! Each monitor tick the cluster feeds one observation per live node:
//! the node's measured power (possibly fault-degraded), its utilization,
//! whether it is running at the nominal V/F point, and its in-flight URL
//! mix. At the nominal point the server power law is linear in the
//! per-URL intensities:
//!
//! ```text
//! P = idle + u^e · Ī · scale,   Ī = Σ_url share_url · I_url
//! ⇒ y = (P − idle) / (scale · u^e) = Σ_url share_url · I_url
//! ```
//!
//! so `(shares, y)` is one EW-RLS observation. Off-nominal nodes are
//! skipped (the DVFS factor re-couples intensity and γ there), which
//! costs nothing: a throttled cluster still has nominal nodes every
//! rotation onset, and the forgetting factor keeps stale evidence from
//! pinning the estimate.

use crate::config::ProfilerConfig;
use crate::mix::MixTracker;
use crate::rls::EwRls;
use dcmetrics::OnlineSummary;
use netsim::request::UrlId;
use netsim::suspect::FlowClass;
use serde::{Deserialize, Serialize};
use simcore::FxHashMap;

/// Accounting of one run of the online profiler, for reports.
#[derive(Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfilerReport {
    /// Learning observations absorbed (nominal-V/F node-ticks).
    pub observations: u64,
    /// Node-ticks skipped (off-nominal, idle, or unreadable sensor).
    pub skipped: u64,
    /// URLs tracked at the end of the run.
    pub tracked_urls: u64,
    /// URLs classified suspect at the end of the run.
    pub suspect_urls: u64,
    /// Classification flips published (promotions + demotions).
    pub reclassifications: u64,
    /// CUSUM drift detections (entry reset and re-learned).
    pub drift_events: u64,
    /// Entries demoted because they went unseen too long.
    pub stale_demotions: u64,
    /// Entries evicted to make room for newcomers.
    pub evictions: u64,
    /// Snapshot of the suspect list at every tick it changed, as
    /// `(tick, suspects)` pairs. Recorded only when
    /// [`ProfilerConfig::track_convergence`] is on — convergence-lag
    /// ("regret") studies replay the attacker's move plan against this
    /// timeline to measure how many slots each move stayed undetected.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub suspect_timeline: Vec<(u64, Vec<UrlId>)>,
}

// Hand-written so reports without a timeline render exactly as before
// the field existed: golden report files stay byte-identical for every
// run that does not opt into convergence tracking.
impl std::fmt::Debug for ProfilerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("ProfilerReport");
        d.field("observations", &self.observations);
        d.field("skipped", &self.skipped);
        d.field("tracked_urls", &self.tracked_urls);
        d.field("suspect_urls", &self.suspect_urls);
        d.field("reclassifications", &self.reclassifications);
        d.field("drift_events", &self.drift_events);
        d.field("stale_demotions", &self.stale_demotions);
        d.field("evictions", &self.evictions);
        if !self.suspect_timeline.is_empty() {
            d.field("suspect_timeline", &self.suspect_timeline);
        }
        d.finish()
    }
}

/// The classification artifact PDF consumes: URL → class with hysteresis
/// bands and minimum-sample gates so borderline URLs don't flap between
/// pools.
///
/// Unlike the offline [`netsim::suspect::SuspectList`], membership here
/// is earned from streamed evidence and can be revoked (drift, staleness,
/// eviction). Lookups are a single hash probe — the forwarding hot path
/// stays O(1) with no allocation.
#[derive(Debug, Clone)]
pub struct AdaptiveSuspectList {
    classes: FxHashMap<UrlId, FlowClass>,
    threshold: f64,
    hysteresis: f64,
    min_samples: u32,
    default_class: FlowClass,
}

impl AdaptiveSuspectList {
    /// Empty list classifying everything `default_class` until learned.
    pub fn new(cfg: &ProfilerConfig, default_class: FlowClass) -> Self {
        AdaptiveSuspectList {
            classes: FxHashMap::default(),
            threshold: cfg.threshold,
            hysteresis: cfg.hysteresis,
            min_samples: cfg.min_samples,
            default_class,
        }
    }

    /// Classify a URL (O(1), allocation-free).
    pub fn classify(&self, url: UrlId) -> FlowClass {
        self.classes.get(&url).copied().unwrap_or(self.default_class)
    }

    /// Convenience: is this URL currently suspect?
    pub fn is_suspect(&self, url: UrlId) -> bool {
        self.classify(url) == FlowClass::Suspect
    }

    /// The published class map (cloned into the forwarding policy).
    pub fn classes(&self) -> &FxHashMap<UrlId, FlowClass> {
        &self.classes
    }

    /// URLs currently classified, for reports.
    pub fn classified(&self) -> usize {
        self.classes.len()
    }

    /// URLs currently suspect, sorted for deterministic iteration.
    pub fn suspects(&self) -> Vec<UrlId> {
        let mut v: Vec<UrlId> = self
            .classes
            .iter()
            .filter(|(_, &c)| c == FlowClass::Suspect)
            .map(|(&u, _)| u)
            .collect();
        v.sort_unstable();
        v
    }

    /// Feed a fresh estimate for `url`. Promotion requires the estimate
    /// above `threshold + hysteresis` with at least `min_samples`
    /// observations; demotion requires it below `threshold − hysteresis`.
    /// Inside the band the previous class sticks. Returns `true` when the
    /// published class changed.
    fn update(&mut self, url: UrlId, estimate: f64, samples: u32) -> bool {
        if samples < self.min_samples {
            return false;
        }
        let current = self.classes.get(&url).copied();
        let next = if estimate > self.threshold + self.hysteresis {
            Some(FlowClass::Suspect)
        } else if estimate < self.threshold - self.hysteresis {
            Some(FlowClass::Innocent)
        } else {
            current // hold inside the hysteresis band
        };
        match next {
            Some(c) if current != Some(c) => {
                self.classes.insert(url, c);
                true
            }
            _ => false,
        }
    }

    /// Revoke a URL's classification (drift, staleness, or eviction).
    /// Returns `true` if it was classified.
    fn revoke(&mut self, url: UrlId) -> bool {
        self.classes.remove(&url).is_some()
    }
}

/// Per-tracked-URL estimator state.
#[derive(Debug, Clone)]
struct UrlSlot {
    url: UrlId,
    /// Learning observations that included this URL.
    samples: u32,
    /// Monitor tick the URL last appeared in any node's mix.
    last_seen: u64,
    /// Welford summary of the estimate trajectory (confidence signal).
    estimates: OnlineSummary,
    /// Two-sided CUSUM accumulators on share-weighted normalized
    /// residuals.
    cusum_pos: f64,
    cusum_neg: f64,
}

/// The streaming power-attribution profiler.
///
/// Owns the EW-RLS estimator, the URL → coordinate assignment (with
/// eviction of the stalest entry at capacity), per-URL confidence
/// tracking, CUSUM drift detection, and the [`AdaptiveSuspectList`] it
/// publishes from.
#[derive(Debug, Clone)]
pub struct PowerProfiler {
    cfg: ProfilerConfig,
    rls: EwRls,
    /// URL → RLS coordinate.
    index: FxHashMap<UrlId, usize>,
    /// Coordinate → tracking state (`None` = free coordinate).
    slots: Vec<Option<UrlSlot>>,
    list: AdaptiveSuspectList,
    /// Global residual spread, for CUSUM normalization.
    residuals: OnlineSummary,
    /// Monitor ticks completed.
    tick: u64,
    stats: ProfilerReport,
}

impl PowerProfiler {
    /// Profiler with the given configuration. The config must validate;
    /// see [`ProfilerConfig::validate`].
    pub fn new(cfg: ProfilerConfig) -> Self {
        assert!(
            cfg.validate().is_ok(),
            "ProfilerConfig must validate before constructing a PowerProfiler"
        );
        let mut rls = EwRls::new(
            cfg.max_urls,
            cfg.forgetting,
            cfg.prior_intensity,
            cfg.prior_variance,
        );
        rls.set_variance_cap(cfg.variance_cap);
        let list = AdaptiveSuspectList::new(&cfg, FlowClass::Innocent);
        let slots = vec![None; cfg.max_urls];
        PowerProfiler {
            cfg,
            rls,
            index: FxHashMap::default(),
            slots,
            list,
            residuals: OnlineSummary::new(),
            tick: 0,
            stats: ProfilerReport::default(),
        }
    }

    /// The adaptive suspect list being published.
    pub fn list(&self) -> &AdaptiveSuspectList {
        &self.list
    }

    /// URLs currently tracked by the estimator.
    pub fn tracked(&self) -> usize {
        self.index.len()
    }

    /// Current intensity estimate for `url`, clamped to `[0, 1]`.
    pub fn estimate(&self, url: UrlId) -> Option<f64> {
        self.index
            .get(&url)
            .map(|&i| self.rls.theta(i).clamp(0.0, 1.0))
    }

    /// Confidence summary for `url`: `(mean, std_dev, samples)` of its
    /// estimate trajectory.
    pub fn confidence(&self, url: UrlId) -> Option<(f64, f64, u64)> {
        let &i = self.index.get(&url)?;
        let s = self.slots[i].as_ref()?;
        Some((s.estimates.mean(), s.estimates.std_dev(), s.estimates.count()))
    }

    /// Run accounting with final tracked/suspect counts filled in.
    pub fn report(&self) -> ProfilerReport {
        let mut r = self.stats.clone();
        r.tracked_urls = self.index.len() as u64;
        r.suspect_urls = self.list.suspects().len() as u64;
        r
    }

    /// Assign a coordinate to `url`, evicting the stalest tracked URL if
    /// at capacity. Returns `None` only when every coordinate is pinned
    /// by the current observation (`busy`).
    fn ensure_tracked(&mut self, url: UrlId, busy: &[(UrlId, u32)]) -> Option<usize> {
        if let Some(&i) = self.index.get(&url) {
            return Some(i);
        }
        let free = self.slots.iter().position(Option::is_none);
        let coord = match free {
            Some(i) => i,
            None => {
                // Evict the stalest URL not part of this observation;
                // ties break on URL id for determinism.
                let victim = self
                    .slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.as_ref().map(|s| (i, s)))
                    .filter(|(_, s)| !busy.iter().any(|&(u, _)| u == s.url))
                    .min_by_key(|(_, s)| (s.last_seen, s.url))?;
                let (i, old_url) = (victim.0, victim.1.url);
                self.index.remove(&old_url);
                self.list.revoke(old_url);
                self.stats.evictions += 1;
                i
            }
        };
        self.rls
            .reset_coord(coord, self.cfg.prior_intensity, self.cfg.prior_variance);
        self.slots[coord] = Some(UrlSlot {
            url,
            samples: 0,
            last_seen: self.tick,
            estimates: OnlineSummary::new(),
            cusum_pos: 0.0,
            cusum_neg: 0.0,
        });
        self.index.insert(url, coord);
        Some(coord)
    }

    /// Absorb one node's monitor-tick observation.
    ///
    /// `power_w` is the node's measured power (`None` when the sensor
    /// dropped the sample), `utilization` its busy-core fraction, and
    /// `at_nominal` whether the node's *effective* P-state is the top one
    /// (the only point where attribution is exactly linear). `mix` is the
    /// node's in-flight `(url, count)` snapshot, sorted by URL.
    pub fn observe_node(
        &mut self,
        power_w: Option<f64>,
        utilization: f64,
        at_nominal: bool,
        mix: &[(UrlId, u32)],
    ) {
        let total: u32 = mix.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return; // idle node: nothing to attribute or refresh
        }
        // Any appearance refreshes staleness, learned from or not.
        for &(url, _) in mix {
            if let Some(&i) = self.index.get(&url) {
                if let Some(s) = self.slots[i].as_mut() {
                    s.last_seen = self.tick;
                }
            }
        }
        let usable = at_nominal && utilization > 0.0;
        let Some(p) = power_w.filter(|p| p.is_finite() && usable) else {
            self.stats.skipped += 1;
            return;
        };
        let y = (p - self.cfg.idle_w)
            / (self.cfg.dynamic_scale_w * utilization.powf(self.cfg.util_exponent));
        if !y.is_finite() {
            self.stats.skipped += 1;
            return;
        }
        // Feature vector: in-flight shares of each tracked URL.
        let mut x: Vec<(usize, f64)> = Vec::with_capacity(mix.len());
        for &(url, count) in mix {
            let Some(coord) = self.ensure_tracked(url, mix) else {
                continue; // more distinct URLs in one mix than capacity
            };
            x.push((coord, count as f64 / total as f64));
        }
        if x.is_empty() {
            self.stats.skipped += 1;
            return;
        }
        let residual = self.rls.observe(&x, y);
        self.stats.observations += 1;
        if residual.is_finite() {
            self.residuals.record(residual);
        }
        let sigma = self.residuals.std_dev().max(1e-3);
        let z = residual / sigma;
        for &(coord, share) in &x {
            let Some(slot) = self.slots[coord].as_mut() else {
                continue;
            };
            slot.samples += 1;
            let est = self.rls.theta(coord).clamp(0.0, 1.0);
            slot.estimates.record(est);
            if slot.samples <= self.cfg.cusum_warmup {
                continue; // initial transient is not drift
            }
            slot.cusum_pos = (slot.cusum_pos + z * share - self.cfg.cusum_slack).max(0.0);
            slot.cusum_neg = (slot.cusum_neg - z * share - self.cfg.cusum_slack).max(0.0);
            if slot.cusum_pos > self.cfg.cusum_threshold
                || slot.cusum_neg > self.cfg.cusum_threshold
            {
                // Drift: this URL's coefficient no longer explains the
                // power it draws. Demote it and re-learn from scratch.
                let url = slot.url;
                slot.samples = 0;
                slot.estimates = OnlineSummary::new();
                slot.cusum_pos = 0.0;
                slot.cusum_neg = 0.0;
                self.rls
                    .reset_coord(coord, self.cfg.prior_intensity, self.cfg.prior_variance);
                if self.list.revoke(url) {
                    self.stats.reclassifications += 1;
                }
                self.stats.drift_events += 1;
            }
        }
    }

    /// Close the current monitor tick: demote stale entries, refresh the
    /// published classifications, and report whether the class map
    /// changed (the caller re-publishes into the forwarding policy only
    /// then).
    pub fn end_tick(&mut self) -> bool {
        self.tick += 1;
        let mut changed = false;
        for coord in 0..self.slots.len() {
            let Some(slot) = self.slots[coord].as_ref() else {
                continue;
            };
            let (url, samples) = (slot.url, slot.samples);
            if self.tick.saturating_sub(slot.last_seen) > self.cfg.stale_after_slots {
                // Unseen too long: release the coordinate and the class.
                self.slots[coord] = None;
                self.index.remove(&url);
                self.rls
                    .reset_coord(coord, self.cfg.prior_intensity, self.cfg.prior_variance);
                self.stats.stale_demotions += 1;
                if self.list.revoke(url) {
                    self.stats.reclassifications += 1;
                    changed = true;
                }
                continue;
            }
            let est = self.rls.theta(coord).clamp(0.0, 1.0);
            if self.list.update(url, est, samples) {
                self.stats.reclassifications += 1;
                changed = true;
            }
        }
        if changed && self.cfg.track_convergence {
            self.stats
                .suspect_timeline
                .push((self.tick, self.list.suspects()));
        }
        changed
    }

    /// Convenience used by tests and benches: run one synthetic tick of
    /// observations from a [`MixTracker`] against ground-truth powers.
    pub fn observe_cluster(
        &mut self,
        mix: &MixTracker,
        power_w: &[Option<f64>],
        utilization: &[f64],
        at_nominal: &[bool],
    ) -> bool {
        for node in 0..mix.nodes() {
            let m = mix.mix_of(node);
            self.observe_node(power_w[node], utilization[node], at_nominal[node], &m);
        }
        self.end_tick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProfilerConfig {
        ProfilerConfig::default()
    }

    /// Synthetic node power at nominal V/F for a mix of true intensities.
    fn power_of(c: &ProfilerConfig, u: f64, mix: &[(UrlId, u32)], truth: &[(UrlId, f64)]) -> f64 {
        let total: u32 = mix.iter().map(|&(_, n)| n).sum();
        let mean_i: f64 = mix
            .iter()
            .map(|&(url, n)| {
                let i = truth
                    .iter()
                    .find(|&&(u2, _)| u2 == url)
                    .map(|&(_, i)| i)
                    .unwrap_or(0.5);
                i * n as f64 / total as f64
            })
            .sum();
        c.idle_w + u.powf(c.util_exponent) * mean_i * c.dynamic_scale_w
    }

    #[test]
    fn learns_and_classifies_a_two_url_mix() {
        let c = cfg();
        let truth = [(UrlId(0), 0.98), (UrlId(3), 0.35)];
        let mut p = PowerProfiler::new(c.clone());
        for round in 0..10u32 {
            // Two nodes with different mixes each tick.
            let m1 = [(UrlId(0), 3 + round % 2), (UrlId(3), 1)];
            let m2 = [(UrlId(0), 1), (UrlId(3), 4)];
            p.observe_node(Some(power_of(&c, 0.8, &m1, &truth)), 0.8, true, &m1);
            p.observe_node(Some(power_of(&c, 0.5, &m2, &truth)), 0.5, true, &m2);
            p.end_tick();
        }
        assert!(p.list().is_suspect(UrlId(0)));
        assert!(!p.list().is_suspect(UrlId(3)));
        assert!((p.estimate(UrlId(0)).unwrap() - 0.98).abs() < 0.02);
        assert!((p.estimate(UrlId(3)).unwrap() - 0.35).abs() < 0.02);
        let r = p.report();
        assert_eq!(r.tracked_urls, 2);
        assert_eq!(r.suspect_urls, 1);
        assert!(r.observations >= 20);
    }

    #[test]
    fn off_nominal_and_dropped_samples_are_skipped() {
        let mut p = PowerProfiler::new(cfg());
        let m = [(UrlId(0), 2)];
        p.observe_node(Some(90.0), 0.5, false, &m); // throttled
        p.observe_node(None, 0.5, true, &m); // sensor dropout
        p.observe_node(Some(90.0), 0.0, true, &m); // no load signal
        assert_eq!(p.report().observations, 0);
        assert_eq!(p.report().skipped, 3);
        // Nothing learned → nothing classified.
        assert!(!p.list().is_suspect(UrlId(0)));
    }

    #[test]
    fn min_sample_gate_blocks_early_promotion() {
        let c = cfg();
        let truth = [(UrlId(7), 0.95)];
        let mut p = PowerProfiler::new(c.clone());
        let m = [(UrlId(7), 4)];
        // Two observations < min_samples (3): no class yet.
        for _ in 0..2 {
            p.observe_node(Some(power_of(&c, 0.9, &m, &truth)), 0.9, true, &m);
        }
        p.end_tick();
        assert!(!p.list().is_suspect(UrlId(7)));
        p.observe_node(Some(power_of(&c, 0.9, &m, &truth)), 0.9, true, &m);
        p.end_tick();
        assert!(p.list().is_suspect(UrlId(7)));
    }

    #[test]
    fn hysteresis_holds_borderline_urls() {
        let c = ProfilerConfig {
            min_samples: 1,
            ..cfg()
        };
        let mut p = PowerProfiler::new(c.clone());
        let m = [(UrlId(1), 4)];
        // Estimate inside the band (threshold 0.70 ± 0.05): never
        // classified, never flaps.
        let truth = [(UrlId(1), 0.72)];
        for _ in 0..10 {
            p.observe_node(Some(power_of(&c, 0.8, &m, &truth)), 0.8, true, &m);
            p.end_tick();
        }
        assert_eq!(p.list().classified(), 0);
        assert_eq!(p.report().reclassifications, 0);
    }

    #[test]
    fn stale_urls_are_demoted_and_capacity_reclaimed() {
        let c = ProfilerConfig {
            stale_after_slots: 3,
            ..cfg()
        };
        let truth = [(UrlId(9), 0.95)];
        let mut p = PowerProfiler::new(c.clone());
        let m = [(UrlId(9), 3)];
        for _ in 0..5 {
            p.observe_node(Some(power_of(&c, 0.8, &m, &truth)), 0.8, true, &m);
            p.end_tick();
        }
        assert!(p.list().is_suspect(UrlId(9)));
        // URL disappears (attacker rotated away): demoted after the
        // staleness window.
        for _ in 0..4 {
            p.end_tick();
        }
        assert!(!p.list().is_suspect(UrlId(9)));
        assert_eq!(p.tracked(), 0);
        assert_eq!(p.report().stale_demotions, 1);
    }

    #[test]
    fn capacity_evicts_the_stalest_url() {
        let c = ProfilerConfig {
            max_urls: 2,
            min_samples: 1,
            ..cfg()
        };
        let truth = [(UrlId(1), 0.9), (UrlId(2), 0.9), (UrlId(3), 0.9)];
        let mut p = PowerProfiler::new(c.clone());
        let m1 = [(UrlId(1), 2)];
        p.observe_node(Some(power_of(&c, 0.8, &m1, &truth)), 0.8, true, &m1);
        p.end_tick();
        let m2 = [(UrlId(2), 2)];
        p.observe_node(Some(power_of(&c, 0.8, &m2, &truth)), 0.8, true, &m2);
        p.end_tick();
        assert_eq!(p.tracked(), 2);
        // A third URL arrives: URL 1 (stalest) is evicted.
        let m3 = [(UrlId(3), 2)];
        p.observe_node(Some(power_of(&c, 0.8, &m3, &truth)), 0.8, true, &m3);
        p.end_tick();
        assert_eq!(p.tracked(), 2);
        assert!(p.estimate(UrlId(1)).is_none());
        assert!(p.estimate(UrlId(3)).is_some());
        assert_eq!(p.report().evictions, 1);
    }

    #[test]
    fn cusum_detects_an_intensity_shift_and_relearns() {
        let c = ProfilerConfig {
            forgetting: 0.995,
            ..cfg()
        };
        let mut p = PowerProfiler::new(c.clone());
        let m = [(UrlId(4), 4)];
        let hot = [(UrlId(4), 0.95)];
        let cold = [(UrlId(4), 0.20)];
        for _ in 0..20 {
            p.observe_node(Some(power_of(&c, 0.8, &m, &hot)), 0.8, true, &m);
            p.end_tick();
        }
        assert!(p.list().is_suspect(UrlId(4)));
        // The service behind the URL changes character: residuals pile up
        // on one side until CUSUM trips, the entry re-learns, and the
        // classification follows the new truth.
        for _ in 0..60 {
            p.observe_node(Some(power_of(&c, 0.8, &m, &cold)), 0.8, true, &m);
            p.end_tick();
        }
        assert!(p.report().drift_events >= 1, "{:?}", p.report());
        assert!(!p.list().is_suspect(UrlId(4)));
        assert!((p.estimate(UrlId(4)).unwrap() - 0.20).abs() < 0.05);
    }

    #[test]
    fn replay_is_bit_identical() {
        let c = cfg();
        let truth = [(UrlId(0), 0.98), (UrlId(2), 0.78), (UrlId(3), 0.35)];
        let run = || {
            let mut p = PowerProfiler::new(c.clone());
            for round in 0..12u32 {
                let m1 = [(UrlId(0), 1 + round % 3), (UrlId(3), 2)];
                let m2 = [(UrlId(2), 2), (UrlId(3), 1 + round % 2)];
                p.observe_node(Some(power_of(&c, 0.7, &m1, &truth)), 0.7, true, &m1);
                p.observe_node(Some(power_of(&c, 0.6, &m2, &truth)), 0.6, true, &m2);
                p.end_tick();
            }
            (
                p.report(),
                p.estimate(UrlId(0)),
                p.estimate(UrlId(2)),
                p.estimate(UrlId(3)),
                p.list().suspects(),
            )
        };
        assert_eq!(run(), run());
    }
}
