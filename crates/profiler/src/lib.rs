//! Online power-attribution profiler — the oracle-free replacement for
//! Anti-DOPE's offline-profiled suspect list.
//!
//! The paper's PDF stage assumes an *offline* map from URL to power
//! intensity; an attacker who rotates to freshly-minted URLs silently
//! defeats a stale map. This crate closes the loop at runtime:
//!
//! 1. [`MixTracker`] maintains each node's in-flight URL mix in O(1) per
//!    request (the cluster bumps it on dispatch and completion).
//! 2. [`PowerProfiler`] decomposes per-node *measured* power over that
//!    mix each monitor tick via exponentially-weighted recursive least
//!    squares ([`rls::EwRls`]) — telemetry faults included: dropped
//!    samples are simply skipped.
//! 3. [`AdaptiveSuspectList`] publishes URL classifications behind
//!    hysteresis bands and minimum-sample gates, with CUSUM drift
//!    detection and staleness demotion so rotated-away URLs decay out.
//!
//! The forwarding hot path only does a hash lookup on the published
//! class map; learning is amortized into the existing monitor tick.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod mix;
pub mod rls;

pub use config::{ProfilerConfig, ProfilerConfigError};
pub use engine::{AdaptiveSuspectList, PowerProfiler, ProfilerReport};
pub use mix::MixTracker;
