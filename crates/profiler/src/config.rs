//! Tuning knobs for the online profiler, with paper-calibrated defaults.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the online power-attribution profiler.
///
/// The first three fields calibrate the attribution model to the server
/// power law `P = idle + u^e · Ī · scale` (the paper's fitted AC model at
/// the nominal V/F point, where the DVFS factor is 1); the rest tune the
/// estimator and the classification hysteresis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ProfilerConfig {
    /// Idle power of one server at the nominal P-state, watts.
    pub idle_w: f64,
    /// Dynamic power scale, watts: full-utilization power swing of a
    /// unit-intensity mix at the nominal P-state.
    pub dynamic_scale_w: f64,
    /// Utilization exponent of the power law.
    pub util_exponent: f64,
    /// EW-RLS forgetting factor λ ∈ (0, 1]; smaller forgets faster.
    pub forgetting: f64,
    /// Prior intensity assumed for a never-observed URL.
    pub prior_intensity: f64,
    /// Prior variance on a never-observed URL's intensity. A large value
    /// (≫ 1) makes the first few observations of a fresh URL dominate the
    /// prior, so newly-minted attack URLs are learned within a couple of
    /// monitor ticks.
    pub prior_variance: f64,
    /// Cap on any coefficient's variance (covariance limiting keeps the
    /// forgetting factor from blowing up unexcited directions).
    pub variance_cap: f64,
    /// Suspicion threshold on estimated intensity (matches the offline
    /// list's threshold so oracle and online labels are comparable).
    pub threshold: f64,
    /// Hysteresis half-band around the threshold: a URL is promoted only
    /// above `threshold + hysteresis` and demoted only below
    /// `threshold - hysteresis`, so borderline flows don't flap.
    pub hysteresis: f64,
    /// Minimum learning observations before a URL may be classified.
    pub min_samples: u32,
    /// Monitor ticks without an appearance after which a tracked URL is
    /// demoted and its capacity reclaimed (rotated-away attack URLs).
    pub stale_after_slots: u64,
    /// Maximum URLs tracked simultaneously (the RLS dimension). When
    /// full, the stalest entry is evicted for a newcomer.
    pub max_urls: usize,
    /// CUSUM slack per observation, in residual standard deviations.
    pub cusum_slack: f64,
    /// CUSUM decision threshold, in residual standard deviations.
    pub cusum_threshold: f64,
    /// Learning observations of a URL before its CUSUM arms (the initial
    /// RLS transient must not read as drift).
    pub cusum_warmup: u32,
    /// Record the suspect list into the report every tick it changes
    /// (`ProfilerReport::suspect_timeline`). Off by default: the timeline
    /// is a measurement artifact for convergence studies, not something a
    /// production control loop needs to carry.
    pub track_convergence: bool,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            idle_w: 40.0,
            dynamic_scale_w: 60.0,
            util_exponent: 0.5,
            forgetting: 0.98,
            prior_intensity: 0.5,
            prior_variance: 25.0,
            variance_cap: 50.0,
            threshold: 0.70,
            hysteresis: 0.05,
            min_samples: 3,
            stale_after_slots: 30,
            max_urls: 32,
            cusum_slack: 0.5,
            cusum_threshold: 8.0,
            cusum_warmup: 8,
            track_convergence: false,
        }
    }
}

impl ProfilerConfig {
    /// Validate every field, reporting the first violation.
    pub fn validate(&self) -> Result<(), ProfilerConfigError> {
        let positive: [(&'static str, f64); 4] = [
            ("dynamic_scale_w", self.dynamic_scale_w),
            ("prior_variance", self.prior_variance),
            ("variance_cap", self.variance_cap),
            ("cusum_threshold", self.cusum_threshold),
        ];
        for (field, value) in positive {
            if value <= 0.0 || !value.is_finite() {
                return Err(ProfilerConfigError::Value { field, value });
            }
        }
        if self.idle_w < 0.0 || !self.idle_w.is_finite() {
            return Err(ProfilerConfigError::Value {
                field: "idle_w",
                value: self.idle_w,
            });
        }
        if !(self.util_exponent > 0.0 && self.util_exponent <= 1.0) {
            return Err(ProfilerConfigError::Value {
                field: "util_exponent",
                value: self.util_exponent,
            });
        }
        if !(self.forgetting > 0.0 && self.forgetting <= 1.0) {
            return Err(ProfilerConfigError::Forgetting {
                value: self.forgetting,
            });
        }
        if !(0.0..=1.0).contains(&self.threshold) || !self.threshold.is_finite() {
            return Err(ProfilerConfigError::Threshold {
                value: self.threshold,
            });
        }
        if !(0.0..0.5).contains(&self.hysteresis) {
            return Err(ProfilerConfigError::Hysteresis {
                value: self.hysteresis,
            });
        }
        if !(0.0..=1.0).contains(&self.prior_intensity) {
            return Err(ProfilerConfigError::Value {
                field: "prior_intensity",
                value: self.prior_intensity,
            });
        }
        if self.cusum_slack < 0.0 || !self.cusum_slack.is_finite() {
            return Err(ProfilerConfigError::Value {
                field: "cusum_slack",
                value: self.cusum_slack,
            });
        }
        if self.max_urls < 1 {
            return Err(ProfilerConfigError::MaxUrls {
                value: self.max_urls,
            });
        }
        Ok(())
    }
}

/// Why a [`ProfilerConfig`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfilerConfigError {
    /// Suspicion threshold outside `[0, 1]`.
    Threshold {
        /// Offending value.
        value: f64,
    },
    /// Hysteresis half-band outside `[0, 0.5)`.
    Hysteresis {
        /// Offending value.
        value: f64,
    },
    /// Forgetting factor outside `(0, 1]`.
    Forgetting {
        /// Offending value.
        value: f64,
    },
    /// Tracked-URL capacity below 1.
    MaxUrls {
        /// Offending value.
        value: usize,
    },
    /// Any other field out of range.
    Value {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for ProfilerConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfilerConfigError::Threshold { value } => {
                write!(f, "profiler threshold {value} outside [0, 1]")
            }
            ProfilerConfigError::Hysteresis { value } => {
                write!(f, "profiler hysteresis {value} outside [0, 0.5)")
            }
            ProfilerConfigError::Forgetting { value } => {
                write!(f, "profiler forgetting factor {value} outside (0, 1]")
            }
            ProfilerConfigError::MaxUrls { value } => {
                write!(f, "profiler must track at least one URL (max_urls={value})")
            }
            ProfilerConfigError::Value { field, value } => {
                write!(f, "profiler {field}={value} out of range")
            }
        }
    }
}

impl std::error::Error for ProfilerConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert_eq!(ProfilerConfig::default().validate(), Ok(()));
    }

    #[test]
    fn bad_fields_are_rejected_with_typed_errors() {
        let c = ProfilerConfig {
            threshold: 1.5,
            ..ProfilerConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ProfilerConfigError::Threshold { value: 1.5 })
        );
        let c = ProfilerConfig {
            forgetting: 0.0,
            ..ProfilerConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ProfilerConfigError::Forgetting { .. })
        ));
        let c = ProfilerConfig {
            hysteresis: 0.5,
            ..ProfilerConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ProfilerConfigError::Hysteresis { .. })
        ));
        let c = ProfilerConfig {
            max_urls: 0,
            ..ProfilerConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ProfilerConfigError::MaxUrls { .. })
        ));
        let c = ProfilerConfig {
            dynamic_scale_w: -1.0,
            ..ProfilerConfig::default()
        };
        assert!(matches!(c.validate(), Err(ProfilerConfigError::Value { .. })));
    }

    #[test]
    fn errors_render_the_offending_field() {
        let e = ProfilerConfigError::Value {
            field: "idle_w",
            value: -3.0,
        };
        assert!(format!("{e}").contains("idle_w"));
        let e = ProfilerConfigError::Threshold { value: 2.0 };
        assert!(format!("{e}").contains('2'));
    }

    #[test]
    fn serde_roundtrip_and_partial_deserialization() {
        let c = ProfilerConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: ProfilerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        // Partial configs fill unspecified fields from the defaults.
        let partial: ProfilerConfig = serde_json::from_str(r#"{"threshold":0.6}"#).unwrap();
        assert_eq!(partial.threshold, 0.6);
        assert_eq!(partial.max_urls, ProfilerConfig::default().max_urls);
    }
}
