//! Per-node in-flight request mix, maintained in O(1) per request.
//!
//! The cluster bumps a counter on every dispatch and completion (or
//! drain); at each monitor tick the profiler reads a node's mix as the
//! feature vector of its attribution observation. Counts use the
//! deterministic [`FxHashMap`] and snapshots are sorted by URL id, so a
//! replay under a fixed seed reproduces observations bit-identically.

use netsim::request::UrlId;
use simcore::FxHashMap;

/// Per-node counters of in-flight requests by URL.
#[derive(Debug, Clone)]
pub struct MixTracker {
    nodes: Vec<FxHashMap<UrlId, u32>>,
}

impl MixTracker {
    /// Tracker over `nodes` servers, all initially empty.
    pub fn new(nodes: usize) -> Self {
        MixTracker {
            nodes: vec![FxHashMap::default(); nodes],
        }
    }

    /// Number of tracked nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// A request for `url` was accepted by `node`.
    pub fn add(&mut self, node: usize, url: UrlId) {
        *self.nodes[node].entry(url).or_insert(0) += 1;
    }

    /// A request for `url` left `node` (completion, crash drain, or
    /// breaker-outage drain). Removing an untracked URL is a no-op so
    /// drains that race a reset stay safe.
    pub fn remove(&mut self, node: usize, url: UrlId) {
        if let Some(c) = self.nodes[node].get_mut(&url) {
            *c -= 1;
            if *c == 0 {
                self.nodes[node].remove(&url);
            }
        }
    }

    /// Forget everything resident on `node` (node replaced on reboot).
    pub fn clear_node(&mut self, node: usize) {
        self.nodes[node].clear();
    }

    /// Total in-flight requests tracked on `node`.
    pub fn inflight(&self, node: usize) -> u32 {
        self.nodes[node].values().sum()
    }

    /// Snapshot of `node`'s mix as `(url, count)`, sorted by URL id for
    /// deterministic downstream iteration.
    pub fn mix_of(&self, node: usize) -> Vec<(UrlId, u32)> {
        let mut v: Vec<(UrlId, u32)> = self.nodes[node].iter().map(|(&u, &c)| (u, c)).collect();
        v.sort_unstable_by_key(|&(u, _)| u);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_roundtrip() {
        let mut m = MixTracker::new(2);
        m.add(0, UrlId(3));
        m.add(0, UrlId(3));
        m.add(0, UrlId(7));
        m.add(1, UrlId(3));
        assert_eq!(m.inflight(0), 3);
        assert_eq!(m.mix_of(0), vec![(UrlId(3), 2), (UrlId(7), 1)]);
        m.remove(0, UrlId(3));
        assert_eq!(m.mix_of(0), vec![(UrlId(3), 1), (UrlId(7), 1)]);
        m.remove(0, UrlId(3));
        m.remove(0, UrlId(7));
        assert!(m.mix_of(0).is_empty());
        // Node 1 untouched.
        assert_eq!(m.inflight(1), 1);
    }

    #[test]
    fn remove_of_untracked_url_is_a_noop() {
        let mut m = MixTracker::new(1);
        m.remove(0, UrlId(9));
        assert_eq!(m.inflight(0), 0);
    }

    #[test]
    fn clear_node_forgets_residents() {
        let mut m = MixTracker::new(1);
        m.add(0, UrlId(1));
        m.add(0, UrlId(2));
        m.clear_node(0);
        assert!(m.mix_of(0).is_empty());
    }

    #[test]
    fn snapshot_is_sorted() {
        let mut m = MixTracker::new(1);
        for u in [9u16, 1, 5, 3] {
            m.add(0, UrlId(u));
        }
        let urls: Vec<u16> = m.mix_of(0).iter().map(|&(u, _)| u.0).collect();
        assert_eq!(urls, vec![1, 3, 5, 9]);
    }
}
