//! # powercap — the power-management substrate
//!
//! Models everything the paper's testbed provided in hardware:
//!
//! * [`PStateTable`] — the ACPI DVFS ladder of the paper's leaf servers:
//!   1.2–2.4 GHz in 0.1 GHz steps, with an affine voltage model and
//!   `f·V²` relative dynamic power.
//! * [`ServerPowerModel`] — nameplate/idle decomposition with per-service
//!   *power intensity* and *frequency sensitivity* knobs (the γ of
//!   DESIGN.md) — the two parameters that make Colla-Filt trip power
//!   capping at low request rates while K-means resists DVFS savings.
//! * [`DvfsController`] — per-server frequency actuator with transition
//!   latency.
//! * [`Rapl`] — RAPL-style "set a watt limit, hardware picks the
//!   P-state" interface with enforcement delay.
//! * [`Battery`] — rack UPS used for peak shaving: capacity, discharge /
//!   charge rate limits, round-trip efficiency, exact depletion times.
//! * [`PowerBudget`] / [`BudgetLevel`] — the paper's Normal/High/Medium/
//!   Low-PB provisioning levels (100 / 90 / 85 / 80 %).
//! * [`PowerHierarchy`] — server → rack → cluster aggregation with a
//!   thermal breaker model.
//! * [`PowerMonitor`] — sliding-window budget-violation detector feeding
//!   the control loop.
//! * [`UniformCapper`] — the search primitive behind the paper's
//!   `Capping` baseline: the highest uniform P-state that satisfies the
//!   budget.
//! * [`ThermalNode`] — the cooling layer DOPE also targets: first-order
//!   thermal model with PROCHOT clamping and critical trip.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod battery;
pub mod budget;
pub mod capper;
pub mod dvfs;
pub mod error;
pub mod monitor;
pub mod pdu;
pub mod pstate;
pub mod rapl;
pub mod server_power;
pub mod thermal;

pub use battery::Battery;
pub use budget::{BudgetLevel, PowerBudget};
pub use capper::UniformCapper;
pub use dvfs::DvfsController;
pub use error::ConfigError;
pub use monitor::PowerMonitor;
pub use pdu::{BreakerState, PowerHierarchy};
pub use pstate::{PState, PStateTable};
pub use rapl::Rapl;
pub use server_power::ServerPowerModel;
pub use thermal::{ThermalNode, ThermalState};
