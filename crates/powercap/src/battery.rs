//! Rack UPS battery model for peak shaving.
//!
//! The paper (Section 6.4) simulates "a mini battery which can sustain
//! 2 minutes when supporting all the web application nodes" and uses it
//! two ways: the `Shaving` baseline discharges until empty before falling
//! back to DVFS; `Anti-DOPE` uses it only as a *transition medium* while
//! reconfiguring V/F. The model tracks stored energy exactly, limits
//! charge/discharge rates, and applies a round-trip efficiency on charge.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// Battery operating mode at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatteryMode {
    /// Neither charging nor discharging.
    Idle,
    /// Delivering the given watts to the load.
    Discharging(f64),
    /// Absorbing the given watts from the utility feed.
    Charging(f64),
}

/// An energy-exact UPS battery.
///
/// ```
/// use powercap::Battery;
/// use simcore::{SimDuration, SimTime};
///
/// // The paper's battery: 2 minutes at the 400 W rack nameplate.
/// let mut b = Battery::sized_for(SimTime::ZERO, 400.0, SimDuration::from_mins(2));
/// assert_eq!(b.capacity_j(), 48_000.0);
/// let granted = b.start_discharge(SimTime::ZERO, 400.0);
/// assert_eq!(granted, 400.0);
/// b.advance(SimTime::from_secs(60));
/// assert!((b.soc() - 0.5).abs() < 1e-9); // half gone after one minute
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Battery {
    /// Usable capacity, joules.
    capacity_j: f64,
    /// Stored energy, joules.
    stored_j: f64,
    /// Maximum discharge power, watts.
    max_discharge_w: f64,
    /// Maximum charge power (at the wall, before efficiency), watts.
    max_charge_w: f64,
    /// Fraction of charging energy that ends up stored.
    charge_efficiency: f64,
    mode: BatteryMode,
    last_update: SimTime,
    /// Lifetime totals for reporting.
    total_discharged_j: f64,
    total_charge_drawn_j: f64,
    /// Number of discharge episodes started (Fig 18 counts discharges
    /// per attack change).
    discharge_episodes: u64,
}

impl Battery {
    /// Build a battery with `capacity_j` joules usable, starting full.
    pub fn new(
        start: SimTime,
        capacity_j: f64,
        max_discharge_w: f64,
        max_charge_w: f64,
        charge_efficiency: f64,
    ) -> Result<Self, ConfigError> {
        for (what, value) in [
            ("capacity_j", capacity_j),
            ("max_discharge_w", max_discharge_w),
            ("max_charge_w", max_charge_w),
        ] {
            if value <= 0.0 || !value.is_finite() {
                return Err(ConfigError::NonPositive { what, value });
            }
        }
        if !(charge_efficiency > 0.0 && charge_efficiency <= 1.0) {
            return Err(ConfigError::OutOfRange {
                what: "charge_efficiency",
                value: charge_efficiency,
                lo: 0.0,
                hi: 1.0,
            });
        }
        Ok(Battery {
            capacity_j,
            stored_j: capacity_j,
            max_discharge_w,
            max_charge_w,
            charge_efficiency,
            mode: BatteryMode::Idle,
            last_update: start,
            total_discharged_j: 0.0,
            total_charge_drawn_j: 0.0,
            discharge_episodes: 0,
        })
    }

    /// The paper's battery: sized to carry `cluster_nameplate_w` for
    /// `sustain` (2 minutes in the paper), able to discharge at full
    /// cluster power, recharge at 25 % of that, 90 % efficient.
    pub fn sized_for(start: SimTime, cluster_nameplate_w: f64, sustain: SimDuration) -> Self {
        let cap = cluster_nameplate_w * sustain.as_secs_f64();
        Battery::new(start, cap, cluster_nameplate_w, cluster_nameplate_w * 0.25, 0.9)
            .expect("sized_for invariant: positive nameplate and non-zero sustain")
    }

    /// Shrink usable capacity to `keep_fraction` of its current value
    /// (aging / fault injection), clamping stored energy to the new
    /// capacity. The fraction must lie in `(0, 1]`.
    pub fn derate(&mut self, keep_fraction: f64) {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "derate invariant: keep_fraction must lie in (0, 1], got {keep_fraction}"
        );
        self.capacity_j *= keep_fraction;
        self.stored_j = self.stored_j.min(self.capacity_j);
    }

    /// Usable capacity, joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Stored energy as of the last `advance`, joules.
    pub fn stored_j(&self) -> f64 {
        self.stored_j
    }

    /// State of charge in `[0, 1]`.
    pub fn soc(&self) -> f64 {
        self.stored_j / self.capacity_j
    }

    /// True when effectively empty.
    pub fn is_empty(&self) -> bool {
        self.stored_j <= 1e-9
    }

    /// True when effectively full.
    pub fn is_full(&self) -> bool {
        self.stored_j >= self.capacity_j - 1e-9
    }

    /// Current mode.
    pub fn mode(&self) -> BatteryMode {
        self.mode
    }

    /// Lifetime energy delivered to the load, joules.
    pub fn total_discharged_j(&self) -> f64 {
        self.total_discharged_j
    }

    /// Lifetime energy drawn from the wall for charging, joules.
    pub fn total_charge_drawn_j(&self) -> f64 {
        self.total_charge_drawn_j
    }

    /// Number of discharge episodes started.
    pub fn discharge_episodes(&self) -> u64 {
        self.discharge_episodes
    }

    /// Integrate the current mode forward to `now`, clamping at the
    /// capacity bounds. Returns the watts actually flowing *after* the
    /// update (0 if the battery hit a bound mid-interval — callers that
    /// need the exact bound-hit instant should consult
    /// [`Battery::time_to_bound`] and schedule an event there).
    pub fn advance(&mut self, now: SimTime) -> f64 {
        let dt = now.since(self.last_update).as_secs_f64();
        self.last_update = now;
        if dt == 0.0 {
            return self.flow_w();
        }
        match self.mode {
            BatteryMode::Idle => {}
            BatteryMode::Discharging(w) => {
                let draw = (w * dt).min(self.stored_j);
                self.stored_j -= draw;
                self.total_discharged_j += draw;
                if self.is_empty() {
                    self.stored_j = 0.0;
                    self.mode = BatteryMode::Idle;
                }
            }
            BatteryMode::Charging(w) => {
                let room = self.capacity_j - self.stored_j;
                let absorbed = (w * self.charge_efficiency * dt).min(room);
                self.stored_j += absorbed;
                self.total_charge_drawn_j += absorbed / self.charge_efficiency;
                if self.is_full() {
                    self.stored_j = self.capacity_j;
                    self.mode = BatteryMode::Idle;
                }
            }
        }
        self.flow_w()
    }

    /// The watts currently flowing (positive for either direction's
    /// magnitude; direction given by [`Battery::mode`]).
    pub fn flow_w(&self) -> f64 {
        match self.mode {
            BatteryMode::Idle => 0.0,
            BatteryMode::Discharging(w) | BatteryMode::Charging(w) => w,
        }
    }

    /// Request a discharge of `want_w` starting at `now`; the grant is
    /// limited by the discharge rate and emptiness. Returns granted watts.
    pub fn start_discharge(&mut self, now: SimTime, want_w: f64) -> f64 {
        assert!(want_w >= 0.0);
        self.advance(now);
        if self.is_empty() || want_w == 0.0 {
            if matches!(self.mode, BatteryMode::Discharging(_)) {
                self.mode = BatteryMode::Idle;
            }
            return 0.0;
        }
        let grant = want_w.min(self.max_discharge_w);
        if !matches!(self.mode, BatteryMode::Discharging(_)) {
            self.discharge_episodes += 1;
        }
        self.mode = BatteryMode::Discharging(grant);
        grant
    }

    /// Begin charging at up to `offer_w` (watts available at the wall).
    /// Returns the watts actually drawn.
    pub fn start_charge(&mut self, now: SimTime, offer_w: f64) -> f64 {
        assert!(offer_w >= 0.0);
        self.advance(now);
        if self.is_full() || offer_w == 0.0 {
            if matches!(self.mode, BatteryMode::Charging(_)) {
                self.mode = BatteryMode::Idle;
            }
            return 0.0;
        }
        let grant = offer_w.min(self.max_charge_w);
        self.mode = BatteryMode::Charging(grant);
        grant
    }

    /// Stop any flow at `now`.
    pub fn stop(&mut self, now: SimTime) {
        self.advance(now);
        self.mode = BatteryMode::Idle;
    }

    /// How long until the current mode hits a capacity bound (empty when
    /// discharging, full when charging). `None` when idle or the flow is
    /// zero. The control loop schedules its re-evaluation event here.
    pub fn time_to_bound(&self) -> Option<SimDuration> {
        match self.mode {
            BatteryMode::Idle => None,
            BatteryMode::Discharging(w) if w > 0.0 => {
                Some(SimDuration::from_secs_f64(self.stored_j / w))
            }
            BatteryMode::Charging(w) if w > 0.0 => {
                let room = self.capacity_j - self.stored_j;
                Some(SimDuration::from_secs_f64(
                    room / (w * self.charge_efficiency),
                ))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn batt() -> Battery {
        // 100 W for 120 s = 12 kJ, discharge up to 100 W, charge up to 25 W.
        Battery::new(s(0), 12_000.0, 100.0, 25.0, 0.9).unwrap()
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(matches!(
            Battery::new(s(0), 0.0, 100.0, 25.0, 0.9),
            Err(ConfigError::NonPositive { what: "capacity_j", .. })
        ));
        assert!(matches!(
            Battery::new(s(0), 100.0, -1.0, 25.0, 0.9),
            Err(ConfigError::NonPositive { what: "max_discharge_w", .. })
        ));
        assert!(matches!(
            Battery::new(s(0), 100.0, 100.0, 25.0, 1.5),
            Err(ConfigError::OutOfRange { what: "charge_efficiency", .. })
        ));
    }

    #[test]
    fn derate_shrinks_capacity_and_clamps_stored() {
        let mut b = batt();
        b.derate(0.75);
        assert!((b.capacity_j() - 9_000.0).abs() < 1e-9);
        // Started full: stored clamps down to the faded capacity.
        assert!((b.stored_j() - 9_000.0).abs() < 1e-9);
        assert!(b.is_full());
        // Discharge math follows the new capacity.
        b.start_discharge(s(0), 100.0);
        assert!((b.time_to_bound().unwrap().as_secs_f64() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn sized_for_two_minutes() {
        let b = Battery::sized_for(s(0), 400.0, SimDuration::from_mins(2));
        assert!((b.capacity_j() - 48_000.0).abs() < 1e-9);
        assert!(b.is_full());
    }

    #[test]
    fn discharge_depletes_linearly() {
        let mut b = batt();
        let grant = b.start_discharge(s(0), 100.0);
        assert_eq!(grant, 100.0);
        b.advance(s(60));
        assert!((b.stored_j() - 6_000.0).abs() < 1e-6);
        assert!((b.soc() - 0.5).abs() < 1e-9);
        b.advance(s(120));
        assert!(b.is_empty());
        assert_eq!(b.mode(), BatteryMode::Idle);
        assert!((b.total_discharged_j() - 12_000.0).abs() < 1e-6);
    }

    #[test]
    fn discharge_rate_limited() {
        let mut b = batt();
        let grant = b.start_discharge(s(0), 500.0);
        assert_eq!(grant, 100.0);
    }

    #[test]
    fn overrun_discharge_clamps_at_empty() {
        let mut b = batt();
        b.start_discharge(s(0), 100.0);
        // Advance far past depletion (120 s): only capacity is delivered.
        b.advance(s(1000));
        assert!(b.is_empty());
        assert!((b.total_discharged_j() - 12_000.0).abs() < 1e-6);
    }

    #[test]
    fn charge_respects_efficiency() {
        let mut b = batt();
        b.start_discharge(s(0), 100.0);
        b.advance(s(120)); // empty
        let drawn = b.start_charge(s(120), 25.0);
        assert_eq!(drawn, 25.0);
        b.advance(s(120 + 100));
        // 25 W × 100 s × 0.9 = 2250 J stored; 2500 J drawn.
        assert!((b.stored_j() - 2250.0).abs() < 1e-6);
        assert!((b.total_charge_drawn_j() - 2500.0).abs() < 1e-6);
    }

    #[test]
    fn charge_stops_at_full() {
        let mut b = batt();
        b.start_discharge(s(0), 100.0);
        b.advance(s(10)); // used 1000 J
        b.start_charge(s(10), 25.0);
        // Room = 1000 J; at 22.5 W effective it takes ~44.4 s.
        let ttb = b.time_to_bound().unwrap();
        assert!((ttb.as_secs_f64() - 1000.0 / 22.5).abs() < 1e-6);
        b.advance(s(10) + ttb + SimDuration::from_secs(5));
        assert!(b.is_full());
        assert_eq!(b.mode(), BatteryMode::Idle);
    }

    #[test]
    fn episodes_counted_per_start() {
        let mut b = batt();
        b.start_discharge(s(0), 50.0);
        // Re-targeting an ongoing discharge is not a new episode.
        b.start_discharge(s(5), 80.0);
        assert_eq!(b.discharge_episodes(), 1);
        b.stop(s(10));
        b.start_discharge(s(20), 50.0);
        assert_eq!(b.discharge_episodes(), 2);
    }

    #[test]
    fn discharge_request_when_empty_grants_zero() {
        let mut b = batt();
        b.start_discharge(s(0), 100.0);
        b.advance(s(200));
        assert_eq!(b.start_discharge(s(200), 100.0), 0.0);
    }

    #[test]
    fn time_to_bound_discharging() {
        let mut b = batt();
        b.start_discharge(s(0), 60.0);
        assert!((b.time_to_bound().unwrap().as_secs_f64() - 200.0).abs() < 1e-9);
        assert_eq!(batt().time_to_bound(), None);
    }

    #[test]
    fn stop_freezes_charge_level() {
        let mut b = batt();
        b.start_discharge(s(0), 100.0);
        b.stop(s(30));
        let level = b.stored_j();
        b.advance(s(500));
        assert_eq!(b.stored_j(), level);
    }

    proptest! {
        /// Stored energy never escapes [0, capacity], regardless of the
        /// command sequence.
        #[test]
        fn prop_soc_bounded(cmds in proptest::collection::vec((0u8..3, 0.0f64..200.0, 1u64..300), 1..40)) {
            let mut b = batt();
            let mut t = 0u64;
            for (kind, w, dt) in cmds {
                match kind {
                    0 => { b.start_discharge(s(t), w); }
                    1 => { b.start_charge(s(t), w); }
                    _ => { b.stop(s(t)); }
                }
                t += dt;
                b.advance(s(t));
                prop_assert!(b.stored_j() >= -1e-9, "stored went negative");
                prop_assert!(b.stored_j() <= b.capacity_j() + 1e-9, "stored exceeded capacity");
            }
        }

        /// Energy conservation: capacity change == discharged − stored-from-charge.
        #[test]
        fn prop_energy_conserved(cmds in proptest::collection::vec((0u8..3, 0.0f64..200.0, 1u64..300), 1..40)) {
            let mut b = batt();
            let initial = b.stored_j();
            let mut t = 0u64;
            for (kind, w, dt) in cmds {
                match kind {
                    0 => { b.start_discharge(s(t), w); }
                    1 => { b.start_charge(s(t), w); }
                    _ => { b.stop(s(t)); }
                }
                t += dt;
                b.advance(s(t));
            }
            let stored_from_charge = b.total_charge_drawn_j() * 0.9;
            let expected = initial - b.total_discharged_j() + stored_from_charge;
            prop_assert!((b.stored_j() - expected).abs() < 1e-6,
                "stored={} expected={}", b.stored_j(), expected);
        }
    }
}
