//! Sliding-window power monitor and budget-violation detector.
//!
//! The paper's RPM keeps "a feedback link between server power monitor
//! and server health checker" (Section 5.1). The monitor ingests one
//! aggregate power sample per control slot, maintains a sliding window,
//! and reports: the moving average, the window peak, and whether the
//! budget is currently violated (with a configurable number of
//! consecutive over-budget samples required, to filter single-sample
//! noise from true emergencies).

use crate::budget::PowerBudget;
use crate::error::ConfigError;
use dcmetrics::{OnlineSummary, P2Quantile};
use simcore::SimTime;
use std::collections::VecDeque;

/// Monitor verdict for the current slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerCondition {
    /// Comfortably under budget (below the guard band).
    Nominal,
    /// Within the guard band under the budget — no action, but close.
    NearBudget,
    /// Over budget but not yet for enough consecutive samples.
    Transient,
    /// A sustained violation requiring intervention.
    Emergency,
}

/// Sliding-window power monitor.
#[derive(Debug, Clone)]
pub struct PowerMonitor {
    budget: PowerBudget,
    /// Samples as (time, watts), newest at the back.
    window: VecDeque<(SimTime, f64)>,
    window_len: usize,
    /// Fraction of the budget treated as the guard band (e.g. 0.05 means
    /// "NearBudget" starts at 95 % of supply).
    guard_fraction: f64,
    /// Consecutive over-budget samples needed to declare an emergency.
    emergency_after: usize,
    consecutive_over: usize,
    /// Consecutive under-budget samples needed to release an emergency
    /// latch (1 = no latch, the pre-hysteresis behaviour).
    release_after: usize,
    consecutive_under: usize,
    /// True between an Emergency verdict and its hysteretic release.
    latched: bool,
    /// Lifetime stats over all samples.
    lifetime: OnlineSummary,
    /// Streaming p90 of observed power (P² estimator — O(1) memory).
    p90: P2Quantile,
    violations: u64,
}

impl PowerMonitor {
    /// New monitor for `budget`, keeping `window_len` samples, declaring
    /// an emergency after `emergency_after` consecutive violations.
    pub fn new(
        budget: PowerBudget,
        window_len: usize,
        emergency_after: usize,
    ) -> Result<Self, ConfigError> {
        if window_len < 1 {
            return Err(ConfigError::ZeroCount { what: "window_len" });
        }
        if emergency_after < 1 {
            return Err(ConfigError::ZeroCount {
                what: "emergency_after",
            });
        }
        Ok(PowerMonitor {
            budget,
            window: VecDeque::with_capacity(window_len),
            window_len,
            guard_fraction: 0.05,
            emergency_after,
            consecutive_over: 0,
            release_after: 1,
            consecutive_under: 0,
            latched: false,
            lifetime: OnlineSummary::new(),
            p90: P2Quantile::new(0.9),
            violations: 0,
        })
    }

    /// Require `release_after` consecutive under-budget samples before an
    /// Emergency verdict releases; until then under-budget samples read
    /// `NearBudget`, never `Nominal`. The default of 1 releases on the
    /// first under-budget sample (no hysteresis). This is the
    /// anti-flapping guard for controllers whose own intervention pulls
    /// the next sample just under the budget.
    pub fn with_release_after(mut self, release_after: usize) -> Result<Self, ConfigError> {
        if release_after < 1 {
            return Err(ConfigError::ZeroCount {
                what: "release_after",
            });
        }
        self.release_after = release_after;
        Ok(self)
    }

    /// Replace the budget (e.g. when a scheme reallocates supply).
    pub fn set_budget(&mut self, budget: PowerBudget) {
        self.budget = budget;
    }

    /// The active budget.
    pub fn budget(&self) -> &PowerBudget {
        &self.budget
    }

    /// Ingest one aggregate sample and classify the condition.
    pub fn observe(&mut self, t: SimTime, watts: f64) -> PowerCondition {
        assert!(watts.is_finite() && watts >= 0.0);
        if self.window.len() == self.window_len {
            self.window.pop_front();
        }
        self.window.push_back((t, watts));
        self.lifetime.record(watts);
        self.p90.record(watts);

        if self.budget.violated_by(watts) {
            self.consecutive_over += 1;
            self.consecutive_under = 0;
            self.violations += 1;
            if self.consecutive_over >= self.emergency_after {
                self.latched = true;
                PowerCondition::Emergency
            } else {
                PowerCondition::Transient
            }
        } else {
            self.consecutive_over = 0;
            let near = watts >= self.budget.supply_w * (1.0 - self.guard_fraction);
            if self.latched {
                self.consecutive_under += 1;
                if self.consecutive_under >= self.release_after {
                    self.latched = false;
                    self.consecutive_under = 0;
                } else {
                    // Held by the release latch: report NearBudget so
                    // controllers keep their caps instead of flapping.
                    return PowerCondition::NearBudget;
                }
            }
            if near {
                PowerCondition::NearBudget
            } else {
                PowerCondition::Nominal
            }
        }
    }

    /// True while an Emergency verdict awaits its hysteretic release.
    pub fn is_latched(&self) -> bool {
        self.latched
    }

    /// Moving average over the window (0 when empty).
    pub fn moving_average(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().map(|&(_, w)| w).sum::<f64>() / self.window.len() as f64
    }

    /// Peak within the window.
    pub fn window_peak(&self) -> Option<f64> {
        self.window
            .iter()
            .map(|&(_, w)| w)
            .fold(None, |acc, w| Some(acc.map_or(w, |a: f64| a.max(w))))
    }

    /// Most recent sample.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.window.back().copied()
    }

    /// Deficit of the latest sample vs the budget (0 when under).
    pub fn deficit_w(&self) -> f64 {
        self.last()
            .map(|(_, w)| (w - self.budget.supply_w).max(0.0))
            .unwrap_or(0.0)
    }

    /// Lifetime count of over-budget samples.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Lifetime sample statistics.
    pub fn lifetime(&self) -> &OnlineSummary {
        &self.lifetime
    }

    /// Streaming estimate of the 90th-percentile power sample — the
    /// health checker's "how close do peaks run to the budget" signal.
    pub fn p90_power(&self) -> Option<f64> {
        self.p90.estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetLevel;
    use proptest::prelude::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn mon() -> PowerMonitor {
        // 400 W nameplate at Medium-PB → 340 W budget, window 5, 3 strikes.
        PowerMonitor::new(
            PowerBudget::for_cluster(400.0, BudgetLevel::Medium),
            5,
            3,
        )
        .unwrap()
    }

    #[test]
    fn zero_parameters_rejected() {
        let b = PowerBudget::for_cluster(400.0, BudgetLevel::Medium);
        assert!(matches!(
            PowerMonitor::new(b, 0, 1),
            Err(ConfigError::ZeroCount { what: "window_len" })
        ));
        assert!(matches!(
            PowerMonitor::new(b, 5, 0),
            Err(ConfigError::ZeroCount { what: "emergency_after" })
        ));
        assert!(matches!(
            PowerMonitor::new(b, 5, 1).unwrap().with_release_after(0),
            Err(ConfigError::ZeroCount { what: "release_after" })
        ));
    }

    #[test]
    fn nominal_under_guard() {
        let mut m = mon();
        assert_eq!(m.observe(s(0), 200.0), PowerCondition::Nominal);
        assert_eq!(m.deficit_w(), 0.0);
    }

    #[test]
    fn near_budget_in_guard_band() {
        let mut m = mon();
        // Guard band: [323, 340].
        assert_eq!(m.observe(s(0), 330.0), PowerCondition::NearBudget);
        assert_eq!(m.observe(s(1), 322.0), PowerCondition::Nominal);
    }

    #[test]
    fn emergency_needs_consecutive_strikes() {
        let mut m = mon();
        assert_eq!(m.observe(s(0), 350.0), PowerCondition::Transient);
        assert_eq!(m.observe(s(1), 350.0), PowerCondition::Transient);
        assert_eq!(m.observe(s(2), 350.0), PowerCondition::Emergency);
        assert_eq!(m.violations(), 3);
        assert!((m.deficit_w() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dip_resets_strikes() {
        let mut m = mon();
        m.observe(s(0), 350.0);
        m.observe(s(1), 350.0);
        assert_eq!(m.observe(s(2), 300.0), PowerCondition::Nominal);
        assert_eq!(m.observe(s(3), 350.0), PowerCondition::Transient);
    }

    #[test]
    fn window_statistics() {
        let mut m = mon();
        for (i, w) in [100.0, 200.0, 300.0].iter().enumerate() {
            m.observe(s(i as u64), *w);
        }
        assert!((m.moving_average() - 200.0).abs() < 1e-9);
        assert_eq!(m.window_peak(), Some(300.0));
        assert_eq!(m.last(), Some((s(2), 300.0)));
    }

    #[test]
    fn window_evicts_oldest() {
        let mut m = mon();
        for i in 0..7 {
            m.observe(s(i), i as f64 * 10.0);
        }
        // Window holds samples 2..=6 → average 40.
        assert!((m.moving_average() - 40.0).abs() < 1e-9);
        assert_eq!(m.window_peak(), Some(60.0));
    }

    #[test]
    fn budget_swap() {
        let mut m = mon();
        m.set_budget(PowerBudget::for_cluster(400.0, BudgetLevel::Low)); // 320 W
        assert_eq!(m.observe(s(0), 330.0), PowerCondition::Transient);
    }

    #[test]
    fn p90_estimate_tracks_peaks() {
        let mut m = mon();
        // 90 samples at 200 W, 10 at 380 W → p90 sits near the peak band.
        for i in 0..100 {
            let w = if i % 10 == 9 { 380.0 } else { 200.0 };
            m.observe(s(i), w);
        }
        let p90 = m.p90_power().unwrap();
        assert!((200.0..=380.0).contains(&p90), "p90={p90}");
        assert!(p90 >= 199.0);
    }

    #[test]
    fn lifetime_summary_accumulates() {
        let mut m = mon();
        for i in 0..10 {
            m.observe(s(i), 100.0 + i as f64);
        }
        assert_eq!(m.lifetime().count(), 10);
        assert!((m.lifetime().mean() - 104.5).abs() < 1e-9);
    }

    #[test]
    fn default_release_matches_pre_latch_behaviour() {
        // release_after = 1: the first under-budget sample after an
        // Emergency reads exactly as it did before the latch existed.
        let mut m = PowerMonitor::new(
            PowerBudget::for_cluster(400.0, BudgetLevel::Medium),
            5,
            1,
        )
        .unwrap();
        assert_eq!(m.observe(s(0), 350.0), PowerCondition::Emergency);
        assert_eq!(m.observe(s(1), 200.0), PowerCondition::Nominal);
        assert!(!m.is_latched());
    }

    #[test]
    fn release_hysteresis_holds_near_budget() {
        let mut m = PowerMonitor::new(
            PowerBudget::for_cluster(400.0, BudgetLevel::Medium),
            5,
            1,
        )
        .unwrap()
        .with_release_after(3)
        .unwrap();
        assert_eq!(m.observe(s(0), 350.0), PowerCondition::Emergency);
        assert!(m.is_latched());
        // Two under-budget samples: held at NearBudget, even far under.
        assert_eq!(m.observe(s(1), 200.0), PowerCondition::NearBudget);
        assert_eq!(m.observe(s(2), 200.0), PowerCondition::NearBudget);
        // Third releases and classifies normally.
        assert_eq!(m.observe(s(3), 200.0), PowerCondition::Nominal);
        assert!(!m.is_latched());
        // An over-budget sample mid-release restarts the count.
        m.observe(s(4), 350.0); // Emergency again (emergency_after = 1)
        assert_eq!(m.observe(s(5), 200.0), PowerCondition::NearBudget);
        assert_eq!(m.observe(s(6), 350.0), PowerCondition::Emergency);
        assert_eq!(m.observe(s(7), 200.0), PowerCondition::NearBudget);
    }

    proptest! {
        /// Oscillation around the budget can never yield an Emergency
        /// without `emergency_after` consecutive over-budget samples
        /// immediately preceding it — the anti-flapping contract.
        #[test]
        fn prop_emergency_needs_consecutive_overs(
            samples in proptest::collection::vec(300.0f64..380.0, 1..80),
            k in 1usize..5,
        ) {
            // Budget: 340 W. Samples straddle it.
            let mut m = PowerMonitor::new(
                PowerBudget::for_cluster(400.0, BudgetLevel::Medium),
                5,
                k,
            )
            .unwrap();
            let mut over_run = 0usize;
            for (i, &w) in samples.iter().enumerate() {
                let c = m.observe(s(i as u64), w);
                if w > 340.0 + 1e-9 {
                    over_run += 1;
                } else {
                    over_run = 0;
                }
                prop_assert_eq!(
                    c == PowerCondition::Emergency,
                    over_run >= k,
                    "sample {} ({} W): verdict {:?}, over_run {}",
                    i, w, c, over_run
                );
            }
        }

        /// With a release latch of `r`, a `Nominal` verdict never appears
        /// within `r` samples of an Emergency: the guard band cannot
        /// produce alternating Emergency/Nominal verdicts.
        #[test]
        fn prop_latch_blocks_emergency_nominal_flapping(
            samples in proptest::collection::vec(300.0f64..380.0, 1..80),
            r in 2usize..6,
        ) {
            let mut m = PowerMonitor::new(
                PowerBudget::for_cluster(400.0, BudgetLevel::Medium),
                5,
                1,
            )
            .unwrap()
            .with_release_after(r)
            .unwrap();
            let mut since_emergency = usize::MAX;
            for (i, &w) in samples.iter().enumerate() {
                let c = m.observe(s(i as u64), w);
                if c == PowerCondition::Emergency {
                    since_emergency = 0;
                } else {
                    since_emergency = since_emergency.saturating_add(1);
                }
                if c == PowerCondition::Nominal {
                    prop_assert!(
                        since_emergency >= r,
                        "Nominal {} samples after Emergency (release_after {})",
                        since_emergency, r
                    );
                }
            }
        }
    }
}
