//! First-order thermal model with PROCHOT-style protection.
//!
//! DOPE targets "unconventional layer\[s\] of targeted resources (e.g.,
//! energy, power, and cooling)" (Section 1). This module supplies the
//! cooling layer: each node is a first-order thermal RC system,
//!
//! ```text
//!     τ · dT/dt = (T_amb + R_th · P) − T
//! ```
//!
//! integrated *exactly* between events (exponential step), so thermal
//! trajectories are independent of the control-slot length, like the
//! energy accounting. Two protection thresholds mirror real packages:
//!
//! * `throttle_at` — PROCHOT: hardware clamps the P-state (independent of
//!   any software power manager) while hot;
//! * `critical_at` — thermal trip: the node shuts down.
//!
//! A sustained DOPE peak heats the room-facing side of the rack even
//! when breakers hold — one more resource the attacker drains.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// Thermal protection status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThermalState {
    /// Below the throttle threshold.
    Nominal,
    /// PROCHOT asserted: hardware frequency clamp active.
    Prochot,
    /// Critical trip: the node has shut down.
    Tripped,
}

/// Thermal parameters and state for one node.
///
/// ```
/// use powercap::thermal::{ThermalNode, ThermalState};
/// use simcore::SimTime;
///
/// let mut node = ThermalNode::paper_default(SimTime::ZERO);
/// assert_eq!(node.temp_c(), 25.0); // starts at ambient
/// // Five minutes at nameplate power soaks past the PROCHOT threshold.
/// let state = node.advance(SimTime::from_secs(300), 100.0);
/// assert_eq!(state, ThermalState::Prochot);
/// assert!(node.temp_c() > 75.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalNode {
    /// Ambient (inlet) temperature, °C.
    pub ambient_c: f64,
    /// Thermal resistance junction→ambient, °C per watt.
    pub r_th_c_per_w: f64,
    /// Thermal time constant.
    pub tau: SimDuration,
    /// PROCHOT threshold, °C.
    pub throttle_at_c: f64,
    /// PROCHOT release (hysteresis), °C.
    pub release_at_c: f64,
    /// Critical trip threshold, °C.
    pub critical_at_c: f64,
    temp_c: f64,
    state: ThermalState,
    last_update: SimTime,
    peak_c: f64,
    prochot_events: u64,
}

impl ThermalNode {
    /// A 100 W-class 1U node: 25 °C inlet, 0.55 °C/W to ambient (steady
    /// state 80 °C at nameplate), 60 s time constant, PROCHOT at 75 °C
    /// with release at 70 °C, trip at 95 °C.
    pub fn paper_default(start: SimTime) -> Self {
        ThermalNode::new(start, 25.0, 0.55, SimDuration::from_secs(60), 75.0, 70.0, 95.0)
    }

    /// Build with explicit parameters, starting at ambient.
    pub fn new(
        start: SimTime,
        ambient_c: f64,
        r_th_c_per_w: f64,
        tau: SimDuration,
        throttle_at_c: f64,
        release_at_c: f64,
        critical_at_c: f64,
    ) -> Self {
        assert!(r_th_c_per_w > 0.0 && !tau.is_zero());
        assert!(release_at_c < throttle_at_c && throttle_at_c < critical_at_c);
        ThermalNode {
            ambient_c,
            r_th_c_per_w,
            tau,
            throttle_at_c,
            release_at_c,
            critical_at_c,
            temp_c: ambient_c,
            state: ThermalState::Nominal,
            last_update: start,
            peak_c: ambient_c,
            prochot_events: 0,
        }
    }

    /// Junction temperature as of the last update, °C.
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Hottest temperature ever reached.
    pub fn peak_c(&self) -> f64 {
        self.peak_c
    }

    /// Current protection state.
    pub fn state(&self) -> ThermalState {
        self.state
    }

    /// Times PROCHOT asserted.
    pub fn prochot_events(&self) -> u64 {
        self.prochot_events
    }

    /// Steady-state temperature at a constant power draw.
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.ambient_c + self.r_th_c_per_w * power_w
    }

    /// Advance to `now` assuming the node drew `power_w` (constant)
    /// since the last update, then update the protection state.
    /// Returns the new state.
    pub fn advance(&mut self, now: SimTime, power_w: f64) -> ThermalState {
        assert!(power_w >= 0.0);
        let dt = now.since(self.last_update).as_secs_f64();
        self.last_update = now;
        if self.state == ThermalState::Tripped {
            return self.state; // latched until explicitly reset
        }
        if dt > 0.0 {
            // Exact first-order step: T → T_ss + (T − T_ss)·e^(−dt/τ).
            let t_ss = self.steady_state_c(power_w);
            let decay = (-dt / self.tau.as_secs_f64()).exp();
            self.temp_c = t_ss + (self.temp_c - t_ss) * decay;
            self.peak_c = self.peak_c.max(self.temp_c);
        }
        self.state = match self.state {
            ThermalState::Tripped => ThermalState::Tripped,
            _ if self.temp_c >= self.critical_at_c => ThermalState::Tripped,
            ThermalState::Prochot => {
                if self.temp_c <= self.release_at_c {
                    ThermalState::Nominal
                } else {
                    ThermalState::Prochot
                }
            }
            ThermalState::Nominal => {
                if self.temp_c >= self.throttle_at_c {
                    self.prochot_events += 1;
                    ThermalState::Prochot
                } else {
                    ThermalState::Nominal
                }
            }
        };
        self.state
    }

    /// Time until the temperature reaches `target_c` at constant
    /// `power_w`, or `None` if it never will (steady state below target).
    pub fn time_to_reach(&self, target_c: f64, power_w: f64) -> Option<SimDuration> {
        let t_ss = self.steady_state_c(power_w);
        if t_ss <= target_c || self.temp_c >= target_c {
            if self.temp_c >= target_c {
                return Some(SimDuration::ZERO);
            }
            return None;
        }
        // target = t_ss + (T − t_ss)·e^(−t/τ)  ⇒  t = τ·ln((T−t_ss)/(target−t_ss))
        let ratio = (self.temp_c - t_ss) / (target_c - t_ss);
        Some(self.tau.mul_f64(ratio.ln().max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn node() -> ThermalNode {
        ThermalNode::paper_default(SimTime::ZERO)
    }

    #[test]
    fn starts_at_ambient() {
        let n = node();
        assert_eq!(n.temp_c(), 25.0);
        assert_eq!(n.state(), ThermalState::Nominal);
        assert_eq!(n.steady_state_c(100.0), 80.0);
    }

    #[test]
    fn heats_toward_steady_state() {
        let mut n = node();
        // One time constant at nameplate: T = 80 + (25−80)e⁻¹ ≈ 59.8 °C.
        n.advance(s(60), 100.0);
        assert!((n.temp_c() - (80.0 - 55.0 * (-1.0f64).exp())).abs() < 1e-9);
        // Five time constants: within 1 % of steady state.
        n.advance(s(300), 100.0);
        assert!((n.temp_c() - 80.0).abs() < 0.5);
    }

    #[test]
    fn nameplate_load_asserts_prochot() {
        let mut n = node();
        let mut state = ThermalState::Nominal;
        for t in 1..=300 {
            state = n.advance(s(t), 100.0);
        }
        assert_eq!(state, ThermalState::Prochot);
        assert_eq!(n.prochot_events(), 1);
        assert!(n.peak_c() > 75.0);
    }

    #[test]
    fn idle_load_never_throttles() {
        let mut n = node();
        for t in 1..=600 {
            assert_eq!(n.advance(s(t), 40.0), ThermalState::Nominal);
        }
        // Steady state at idle: 25 + 0.55·40 = 47 °C.
        assert!((n.temp_c() - 47.0).abs() < 0.2);
    }

    #[test]
    fn prochot_releases_with_hysteresis() {
        let mut n = node();
        for t in 1..=300 {
            n.advance(s(t), 100.0);
        }
        assert_eq!(n.state(), ThermalState::Prochot);
        // Cool at idle: still Prochot until 70 °C, then Nominal.
        let mut released_at = None;
        for t in 301..=600 {
            if n.advance(s(t), 40.0) == ThermalState::Nominal {
                released_at = Some(t);
                break;
            }
        }
        let released_at = released_at.expect("should release");
        // At the release instant the temperature is at/under 70 °C.
        assert!(n.temp_c() <= 70.0 + 1e-9, "released at {} °C", n.temp_c());
        assert!(released_at > 300);
    }

    #[test]
    fn critical_trip_latches() {
        let mut n = ThermalNode::new(
            SimTime::ZERO,
            25.0,
            1.0, // 125 °C steady state at 100 W
            SimDuration::from_secs(30),
            75.0,
            70.0,
            95.0,
        );
        for t in 1..=300 {
            n.advance(s(t), 100.0);
        }
        assert_eq!(n.state(), ThermalState::Tripped);
        // Cooling does not un-trip.
        n.advance(s(900), 0.0);
        assert_eq!(n.state(), ThermalState::Tripped);
    }

    #[test]
    fn time_to_reach_matches_simulation() {
        let n = node();
        let eta = n.time_to_reach(75.0, 100.0).expect("reachable");
        let mut sim = node();
        sim.advance(SimTime::ZERO + eta, 100.0);
        assert!((sim.temp_c() - 75.0).abs() < 0.01, "T={}", sim.temp_c());
        // Unreachable at idle.
        assert_eq!(n.time_to_reach(75.0, 40.0), None);
        // Already there.
        let mut hot = node();
        hot.advance(s(600), 100.0);
        assert_eq!(hot.time_to_reach(50.0, 100.0), Some(SimDuration::ZERO));
    }

    proptest! {
        /// Temperature stays within [ambient, steady-state(max power)]
        /// for any piecewise-constant power program, and the exponential
        /// update is step-size invariant (same endpoint whether advanced
        /// in one step or many).
        #[test]
        fn prop_bounded_and_step_invariant(
            powers in proptest::collection::vec(0.0f64..100.0, 1..20),
            step_s in 1u64..120,
        ) {
            let mut fine = ThermalNode::paper_default(SimTime::ZERO);
            let mut coarse = ThermalNode::paper_default(SimTime::ZERO);
            let mut t = 0u64;
            for &p in &powers {
                // Coarse: one jump over the whole segment.
                coarse.advance(s(t + step_s), p);
                // Fine: 1 s steps over the same segment.
                for dt in 1..=step_s {
                    fine.advance(s(t + dt), p);
                }
                t += step_s;
                prop_assert!((fine.temp_c() - coarse.temp_c()).abs() < 1e-6);
                prop_assert!(fine.temp_c() >= 25.0 - 1e-9);
                prop_assert!(fine.temp_c() <= fine.steady_state_c(100.0) + 1e-9);
            }
        }
    }
}
