//! Power budgets and the paper's provisioning levels.
//!
//! Section 3.3: "We configure the normal power budget (Normal-PB) as our
//! baseline (with 100 % supplied power). We configure high power budget
//! (High-PB) with 90 %, medium power budget (Medium-PB) with 85 %, and
//! low power budget with 80 % (Low-PB) of Normal-PB." These fractions are
//! the oversubscription axis of Figures 16, 17, and 19.

use serde::{Deserialize, Serialize};

/// The four provisioning levels evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BudgetLevel {
    /// 100 % of aggregate nameplate — no oversubscription.
    Normal,
    /// 90 % — mild oversubscription.
    High,
    /// 85 % — the paper's "medium" scenario.
    Medium,
    /// 80 % — aggressive oversubscription.
    Low,
}

impl BudgetLevel {
    /// All levels in the paper's presentation order.
    pub const ALL: [BudgetLevel; 4] = [
        BudgetLevel::Normal,
        BudgetLevel::High,
        BudgetLevel::Medium,
        BudgetLevel::Low,
    ];

    /// Supplied power as a fraction of aggregate nameplate.
    pub fn fraction(self) -> f64 {
        match self {
            BudgetLevel::Normal => 1.0,
            BudgetLevel::High => 0.90,
            BudgetLevel::Medium => 0.85,
            BudgetLevel::Low => 0.80,
        }
    }

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            BudgetLevel::Normal => "Normal-PB",
            BudgetLevel::High => "High-PB",
            BudgetLevel::Medium => "Medium-PB",
            BudgetLevel::Low => "Low-PB",
        }
    }
}

impl std::fmt::Display for BudgetLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete wattage budget for a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBudget {
    /// Watts the utility feed can supply.
    pub supply_w: f64,
    /// The level this budget was derived from (for reporting).
    pub level: BudgetLevel,
}

impl PowerBudget {
    /// Budget for a cluster with the given aggregate nameplate at `level`.
    pub fn for_cluster(aggregate_nameplate_w: f64, level: BudgetLevel) -> Self {
        assert!(
            aggregate_nameplate_w > 0.0,
            "for_cluster invariant: aggregate nameplate must be positive, got {aggregate_nameplate_w}"
        );
        PowerBudget {
            supply_w: aggregate_nameplate_w * level.fraction(),
            level,
        }
    }

    /// Headroom (positive) or deficit (negative) for a demand, watts.
    pub fn margin_w(&self, demand_w: f64) -> f64 {
        self.supply_w - demand_w
    }

    /// True when `demand_w` violates the budget.
    pub fn violated_by(&self, demand_w: f64) -> bool {
        demand_w > self.supply_w + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_match_paper() {
        assert_eq!(BudgetLevel::Normal.fraction(), 1.0);
        assert_eq!(BudgetLevel::High.fraction(), 0.90);
        assert_eq!(BudgetLevel::Medium.fraction(), 0.85);
        assert_eq!(BudgetLevel::Low.fraction(), 0.80);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(BudgetLevel::Medium.name(), "Medium-PB");
        assert_eq!(format!("{}", BudgetLevel::Low), "Low-PB");
    }

    #[test]
    fn cluster_budget() {
        // Paper's mini rack: 4 × 100 W.
        let b = PowerBudget::for_cluster(400.0, BudgetLevel::Medium);
        assert!((b.supply_w - 340.0).abs() < 1e-9);
        assert!(b.violated_by(341.0));
        assert!(!b.violated_by(340.0));
        assert!((b.margin_w(300.0) - 40.0).abs() < 1e-9);
        assert!((b.margin_w(350.0) + 10.0).abs() < 1e-9);
    }

    #[test]
    fn all_levels_ordered_by_supply() {
        let fracs: Vec<f64> = BudgetLevel::ALL.iter().map(|l| l.fraction()).collect();
        for w in fracs.windows(2) {
            assert!(w[0] > w[1]);
        }
    }
}
