//! The server power model.
//!
//! Decomposes node power into an idle floor plus a dynamic component that
//! depends on frequency, utilization, and *what* is running:
//!
//! ```text
//! P(p, u, load) = P_idle(p) + u^e · intensity · s(p, γ) · (P_name − P_idle_max)
//!      s(p, γ)  = γ · rel_dyn_power(p) + (1 − γ)
//! ```
//!
//! The utilization exponent `e < 1` gives the concave power-vs-load curve
//! every SPECpower run shows: the first busy threads wake the uncore,
//! caches and memory, so power climbs steeply at low utilization and
//! flattens toward nameplate. This concavity is load-bearing for the
//! paper's threat: a flood can push *power* to the nameplate while the
//! CPUs still have queueing headroom — power saturates before latency
//! does (compare Figs 4 and 16).
//!
//! * `intensity ∈ (0, 1]` — how hard the workload drives the package at
//!   full frequency (Colla-Filt ≈ 1, a volume flood ≈ 0.3). This is the
//!   per-request "power demand" axis of Figures 4–5.
//! * `γ ∈ [0, 1]` — how much of the dynamic power responds to DVFS.
//!   CPU-bound kernels (γ high) get big savings per step; memory-bound
//!   kernels like K-means (γ low) barely save — which is exactly why the
//!   paper observes K-means forcing the deepest V/F cuts (Fig 6-b).

use crate::pstate::{PState, PStateTable};
use serde::{Deserialize, Serialize};

/// Per-server power model parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerPowerModel {
    /// Nameplate (max) power at full frequency and full load, watts.
    pub nameplate_w: f64,
    /// Idle power at nominal frequency, watts.
    pub idle_w: f64,
    /// Fraction of idle power that scales with frequency (leakage and
    /// uncore clocks); the rest is static (fans, disks, NIC).
    pub idle_freq_fraction: f64,
    /// Concavity of the power-vs-utilization curve (`u^e`), `0 < e ≤ 1`.
    pub util_exponent: f64,
    /// The DVFS ladder this server runs.
    pub table: PStateTable,
}

impl ServerPowerModel {
    /// The paper's leaf node: 100 W nameplate, 40 W idle, the 13-step
    /// 1.2–2.4 GHz ladder.
    pub fn paper_default() -> Self {
        ServerPowerModel {
            nameplate_w: 100.0,
            idle_w: 40.0,
            idle_freq_fraction: 0.3,
            util_exponent: 0.5,
            table: PStateTable::paper_default(),
        }
    }

    /// Idle power at P-state `p`, watts.
    pub fn idle_power(&self, p: PState) -> f64 {
        let scale = self.idle_freq_fraction * self.table.rel_dyn_power(p)
            + (1.0 - self.idle_freq_fraction);
        self.idle_w * scale
    }

    /// Dynamic power headroom at nominal frequency: nameplate − idle.
    pub fn dynamic_headroom_w(&self) -> f64 {
        self.nameplate_w - self.idle_w
    }

    /// DVFS sensitivity factor `s(p, γ)` in `(0, 1]`.
    #[inline]
    pub fn dvfs_factor(&self, p: PState, gamma: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&gamma));
        gamma * self.table.rel_dyn_power(p) + (1.0 - gamma)
    }

    /// Instantaneous node power, watts.
    ///
    /// * `p` — current P-state
    /// * `utilization` — busy-core fraction in `[0, 1]`
    /// * `intensity` — workload power intensity in `[0, 1]`
    /// * `gamma` — workload DVFS power sensitivity in `[0, 1]`
    pub fn power(&self, p: PState, utilization: f64, intensity: f64, gamma: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&utilization), "util={utilization}");
        debug_assert!((0.0..=1.0).contains(&intensity), "intensity={intensity}");
        let u_eff = utilization.powf(self.util_exponent);
        self.idle_power(p)
            + u_eff * intensity * self.dvfs_factor(p, gamma) * self.dynamic_headroom_w()
    }

    /// The highest P-state whose worst-case power (`u = 1`) with the given
    /// workload character stays at or below `cap_w`. Returns the floor
    /// state when even it violates the cap (the governor can do no more).
    pub fn state_for_cap(&self, cap_w: f64, intensity: f64, gamma: f64) -> PState {
        for i in (0..self.table.len()).rev() {
            let p = PState(i as u8);
            if self.power(p, 1.0, intensity, gamma) <= cap_w + 1e-9 {
                return p;
            }
        }
        self.table.min_state()
    }

    /// Power at full utilization for a workload, at state `p`.
    pub fn full_load_power(&self, p: PState, intensity: f64, gamma: f64) -> f64 {
        self.power(p, 1.0, intensity, gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nameplate_at_top_state_full_load() {
        let m = ServerPowerModel::paper_default();
        let top = m.table.max_state();
        let p = m.power(top, 1.0, 1.0, 1.0);
        assert!((p - 100.0).abs() < 1e-9, "full power {p}");
    }

    #[test]
    fn idle_at_zero_utilization() {
        let m = ServerPowerModel::paper_default();
        let top = m.table.max_state();
        assert!((m.power(top, 0.0, 1.0, 1.0) - 40.0).abs() < 1e-9);
        // Idle power drops at lower frequency, but only by the
        // frequency-scaled fraction.
        let bottom_idle = m.idle_power(PState(0));
        assert!(bottom_idle < 40.0);
        assert!(bottom_idle > 40.0 * (1.0 - m.idle_freq_fraction));
    }

    #[test]
    fn utilization_curve_is_concave() {
        // Half the cores busy already draw ~71 % of the dynamic headroom
        // (u^0.5), matching measured server power curves.
        let m = ServerPowerModel::paper_default();
        let top = m.table.max_state();
        let half = m.power(top, 0.5, 1.0, 1.0);
        let expected = 40.0 + 0.5f64.sqrt() * 60.0;
        assert!((half - expected).abs() < 1e-9, "half-load power {half}");
        // Strictly above the linear interpolation between idle and full.
        assert!(half > 40.0 + 0.5 * 60.0 + 1.0);
    }

    #[test]
    fn power_monotone_in_each_argument() {
        let m = ServerPowerModel::paper_default();
        let top = m.table.max_state();
        assert!(m.power(top, 0.5, 1.0, 1.0) < m.power(top, 0.9, 1.0, 1.0));
        assert!(m.power(top, 0.9, 0.5, 1.0) < m.power(top, 0.9, 1.0, 1.0));
        assert!(m.power(PState(0), 0.9, 1.0, 1.0) < m.power(top, 0.9, 1.0, 1.0));
    }

    #[test]
    fn gamma_controls_dvfs_savings() {
        let m = ServerPowerModel::paper_default();
        let top = m.table.max_state();
        let bottom = PState(0);
        // CPU-bound (γ=1): big savings from throttling.
        let cpu_save = m.power(top, 1.0, 1.0, 1.0) - m.power(bottom, 1.0, 1.0, 1.0);
        // Memory-bound (γ=0.3): much smaller savings.
        let mem_save = m.power(top, 1.0, 1.0, 0.3) - m.power(bottom, 1.0, 1.0, 0.3);
        assert!(
            cpu_save > 2.0 * mem_save,
            "cpu_save={cpu_save} mem_save={mem_save}"
        );
    }

    #[test]
    fn state_for_cap_feasible() {
        let m = ServerPowerModel::paper_default();
        // A generous cap keeps nominal frequency.
        assert_eq!(m.state_for_cap(150.0, 1.0, 1.0), m.table.max_state());
        // Nameplate exactly → still nominal.
        assert_eq!(m.state_for_cap(100.0, 1.0, 1.0), m.table.max_state());
        // A tight cap forces a lower state that actually meets it.
        let p = m.state_for_cap(70.0, 1.0, 1.0);
        assert!(p < m.table.max_state());
        assert!(m.full_load_power(p, 1.0, 1.0) <= 70.0 + 1e-9);
    }

    #[test]
    fn state_for_cap_infeasible_returns_floor() {
        let m = ServerPowerModel::paper_default();
        let p = m.state_for_cap(10.0, 1.0, 1.0);
        assert_eq!(p, m.table.min_state());
        // And the floor still exceeds the cap — callers must handle this.
        assert!(m.full_load_power(p, 1.0, 1.0) > 10.0);
    }

    #[test]
    fn memory_bound_needs_deeper_cut_for_same_savings() {
        // The Fig 6-b effect: to save the same watts, K-means (low γ)
        // must drop more P-states than Colla-Filt (high γ).
        let m = ServerPowerModel::paper_default();
        let target = 85.0;
        let p_cpu = m.state_for_cap(target, 1.0, 0.95);
        let p_mem = m.state_for_cap(target, 0.95, 0.45);
        assert!(
            p_mem < p_cpu,
            "memory-bound state {p_mem:?} should be below cpu-bound {p_cpu:?}"
        );
    }

    proptest! {
        #[test]
        fn prop_power_within_envelope(
            state in 0u8..13,
            util in 0.0f64..1.0,
            intensity in 0.0f64..1.0,
            gamma in 0.0f64..1.0,
        ) {
            let m = ServerPowerModel::paper_default();
            let p = m.power(PState(state), util, intensity, gamma);
            prop_assert!(p >= 0.0);
            prop_assert!(p <= m.nameplate_w + 1e-9);
            prop_assert!(p >= m.idle_power(PState(state)) - 1e-9);
        }

        #[test]
        fn prop_state_for_cap_is_maximal(
            cap in 40.0f64..120.0,
            intensity in 0.1f64..1.0,
            gamma in 0.0f64..1.0,
        ) {
            let m = ServerPowerModel::paper_default();
            let p = m.state_for_cap(cap, intensity, gamma);
            if p != m.table.max_state() {
                // The next state up must violate the cap.
                let up = PState(p.0 + 1);
                prop_assert!(m.full_load_power(up, intensity, gamma) > cap - 1e-9);
            }
        }
    }
}
