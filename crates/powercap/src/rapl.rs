//! RAPL-style power-limit interface.
//!
//! The paper's RPM module "leverages the perf_event interface ... to
//! modify the RAPL interfaces provided by Intel processors" (Section
//! 5.2). The semantics that matter to a power manager: you write a watt
//! limit, and after an enforcement delay the package governor holds
//! average power at or below that limit by clamping the P-state. We model
//! exactly that: a watt limit plus the workload character currently on
//! the node resolve to a P-state command on the node's
//! [`DvfsController`].

use crate::dvfs::DvfsController;
use crate::pstate::PState;
use crate::server_power::ServerPowerModel;
use simcore::{SimDuration, SimTime};

/// A per-node power-limit actuator.
#[derive(Debug, Clone)]
pub struct Rapl {
    model: ServerPowerModel,
    /// Active limit, watts; `None` = uncapped.
    limit_w: Option<f64>,
}

impl Rapl {
    /// New uncapped interface over the given power model.
    pub fn new(model: ServerPowerModel) -> Self {
        Rapl {
            model,
            limit_w: None,
        }
    }

    /// The power model this interface resolves limits against.
    pub fn model(&self) -> &ServerPowerModel {
        &self.model
    }

    /// The active limit, if any.
    pub fn limit_w(&self) -> Option<f64> {
        self.limit_w
    }

    /// Set (or clear with `None`) the package power limit at `now`,
    /// resolving it to a P-state for the workload character currently on
    /// the node (`intensity`, `gamma`) and commanding the DVFS
    /// controller. Returns the commanded state.
    pub fn set_limit(
        &mut self,
        now: SimTime,
        dvfs: &mut DvfsController,
        limit_w: Option<f64>,
        intensity: f64,
        gamma: f64,
    ) -> PState {
        self.set_limit_delayed(now, dvfs, limit_w, intensity, gamma, SimDuration::ZERO)
    }

    /// [`Rapl::set_limit`] with an extra actuation delay (fault
    /// injection: the MSR write reaches the governor late).
    pub fn set_limit_delayed(
        &mut self,
        now: SimTime,
        dvfs: &mut DvfsController,
        limit_w: Option<f64>,
        intensity: f64,
        gamma: f64,
        extra: SimDuration,
    ) -> PState {
        self.limit_w = limit_w;
        let target = self.resolve(limit_w, intensity, gamma);
        dvfs.command_delayed(now, target, extra);
        target
    }

    /// The P-state a given limit resolves to for the workload character,
    /// without commanding anything — used for actuator read-back checks.
    pub fn resolve(&self, limit_w: Option<f64>, intensity: f64, gamma: f64) -> PState {
        match limit_w {
            None => self.model.table.max_state(),
            Some(w) => self.model.state_for_cap(w, intensity, gamma),
        }
    }

    /// Worst-case power at the currently-enforced target state for the
    /// given workload character — what the governor believes it holds.
    pub fn enforced_power_w(&self, dvfs: &DvfsController, intensity: f64, gamma: f64) -> f64 {
        self.model.full_load_power(dvfs.target(), intensity, gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pstate::PStateTable;
    use simcore::SimDuration;

    fn rig() -> (Rapl, DvfsController) {
        let model = ServerPowerModel::paper_default();
        let dvfs = DvfsController::new(PStateTable::paper_default(), SimDuration::from_millis(10));
        (Rapl::new(model), dvfs)
    }

    #[test]
    fn uncapped_runs_nominal() {
        let (mut rapl, mut dvfs) = rig();
        let p = rapl.set_limit(SimTime::ZERO, &mut dvfs, None, 1.0, 1.0);
        assert_eq!(p, PState(12));
        assert_eq!(rapl.limit_w(), None);
    }

    #[test]
    fn limit_resolves_to_satisfying_state() {
        let (mut rapl, mut dvfs) = rig();
        let p = rapl.set_limit(SimTime::ZERO, &mut dvfs, Some(75.0), 1.0, 1.0);
        assert!(p < PState(12));
        assert!(rapl.enforced_power_w(&dvfs, 1.0, 1.0) <= 75.0 + 1e-9);
        // Takes effect only after the DVFS transition latency.
        dvfs.advance(SimTime::from_millis(5));
        assert_eq!(dvfs.effective(), PState(12));
        dvfs.advance(SimTime::from_millis(10));
        assert_eq!(dvfs.effective(), p);
    }

    #[test]
    fn memory_bound_workload_needs_lower_state() {
        let (mut rapl, mut dvfs) = rig();
        let p_cpu = rapl.set_limit(SimTime::ZERO, &mut dvfs, Some(80.0), 1.0, 0.95);
        let p_mem = rapl.set_limit(SimTime::from_millis(20), &mut dvfs, Some(80.0), 0.95, 0.45);
        assert!(p_mem < p_cpu, "{p_mem:?} vs {p_cpu:?}");
    }

    #[test]
    fn clearing_limit_restores_nominal() {
        let (mut rapl, mut dvfs) = rig();
        rapl.set_limit(SimTime::ZERO, &mut dvfs, Some(60.0), 1.0, 1.0);
        let p = rapl.set_limit(SimTime::from_secs(1), &mut dvfs, None, 1.0, 1.0);
        assert_eq!(p, PState(12));
        dvfs.advance(SimTime::from_secs(2));
        assert_eq!(dvfs.effective(), PState(12));
    }

    #[test]
    fn delayed_limit_defers_enforcement() {
        let (mut rapl, mut dvfs) = rig();
        let p = rapl.set_limit_delayed(
            SimTime::ZERO,
            &mut dvfs,
            Some(75.0),
            1.0,
            1.0,
            SimDuration::from_millis(90),
        );
        assert_eq!(rapl.resolve(Some(75.0), 1.0, 1.0), p);
        dvfs.advance(SimTime::from_millis(99));
        assert_eq!(dvfs.effective(), PState(12));
        dvfs.advance(SimTime::from_millis(100));
        assert_eq!(dvfs.effective(), p);
    }

    #[test]
    fn infeasible_limit_floors() {
        let (mut rapl, mut dvfs) = rig();
        let p = rapl.set_limit(SimTime::ZERO, &mut dvfs, Some(5.0), 1.0, 1.0);
        assert_eq!(p, PState(0));
    }
}
