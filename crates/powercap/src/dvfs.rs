//! Per-server DVFS actuator with transition latency.
//!
//! Real frequency transitions are not instantaneous: the governor writes
//! an MSR, the PLL relocks, and on the paper's testbed the effective lag
//! of an ACPI transition plus driver overhead is on the order of
//! milliseconds. The controller models a commanded *target* state that
//! becomes *effective* after `transition_latency`. Commands issued while
//! a transition is in flight re-target it (last-write-wins), matching how
//! the Linux `userspace` governor behaves.

use crate::pstate::{PState, PStateTable};
use simcore::{SimDuration, SimTime};

/// DVFS state machine for one server.
#[derive(Debug, Clone)]
pub struct DvfsController {
    table: PStateTable,
    /// State the hardware is actually running.
    effective: PState,
    /// State most recently commanded.
    target: PState,
    /// When the in-flight transition (if any) completes.
    settles_at: Option<SimTime>,
    transition_latency: SimDuration,
    /// Count of commanded transitions (for reporting V/F churn).
    transitions: u64,
}

impl DvfsController {
    /// New controller at nominal frequency.
    pub fn new(table: PStateTable, transition_latency: SimDuration) -> Self {
        let top = table.max_state();
        DvfsController {
            table,
            effective: top,
            target: top,
            settles_at: None,
            transition_latency,
            transitions: 0,
        }
    }

    /// The ladder this controller drives.
    pub fn table(&self) -> &PStateTable {
        &self.table
    }

    /// Apply any transition that has settled by `now`. Call before
    /// reading [`DvfsController::effective`] at a new timestamp.
    pub fn advance(&mut self, now: SimTime) {
        if let Some(t) = self.settles_at {
            if now >= t {
                self.effective = self.target;
                self.settles_at = None;
            }
        }
    }

    /// Command a new target state at time `now`. Returns the instant at
    /// which the new state becomes effective (immediately if the target
    /// equals the current effective state and nothing is in flight).
    pub fn command(&mut self, now: SimTime, target: PState) -> SimTime {
        self.command_delayed(now, target, SimDuration::ZERO)
    }

    /// [`DvfsController::command`] with an additional settle delay on top
    /// of the baseline transition latency — used by fault injection to
    /// model a command that reaches the governor late.
    pub fn command_delayed(&mut self, now: SimTime, target: PState, extra: SimDuration) -> SimTime {
        let target = self.table.clamp(target);
        self.advance(now);
        if target == self.effective && self.settles_at.is_none() && extra.is_zero() {
            self.target = target;
            return now;
        }
        self.target = target;
        self.transitions += 1;
        let settle = now + self.transition_latency + extra;
        self.settles_at = Some(settle);
        settle
    }

    /// The state the hardware is running as of the last `advance`.
    pub fn effective(&self) -> PState {
        self.effective
    }

    /// The most recently commanded state.
    pub fn target(&self) -> PState {
        self.target
    }

    /// When the pending transition settles, if one is in flight.
    pub fn pending_settle(&self) -> Option<SimTime> {
        self.settles_at
    }

    /// Number of transitions commanded so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Effective frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.table.freq_ghz(self.effective)
    }

    /// Effective frequency relative to nominal.
    pub fn rel_freq(&self) -> f64 {
        self.table.rel_freq(self.effective)
    }

    /// How many states below nominal the *effective* state sits — the
    /// paper's "V/F reduction" y-axis in Fig 6.
    pub fn vf_reduction_steps(&self) -> u8 {
        self.table.max_state().0 - self.effective.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> DvfsController {
        DvfsController::new(PStateTable::paper_default(), SimDuration::from_millis(10))
    }

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn starts_at_nominal() {
        let c = ctl();
        assert_eq!(c.effective(), PStateTable::paper_default().max_state());
        assert_eq!(c.vf_reduction_steps(), 0);
        assert!((c.freq_ghz() - 2.4).abs() < 1e-12);
    }

    #[test]
    fn transition_takes_latency() {
        let mut c = ctl();
        let settle = c.command(ms(0), PState(5));
        assert_eq!(settle, ms(10));
        // Before settle: still nominal.
        c.advance(ms(5));
        assert_eq!(c.effective(), PState(12));
        // At settle: new state.
        c.advance(ms(10));
        assert_eq!(c.effective(), PState(5));
        assert_eq!(c.vf_reduction_steps(), 7);
    }

    #[test]
    fn same_state_command_is_instant() {
        let mut c = ctl();
        let settle = c.command(ms(0), PState(12));
        assert_eq!(settle, ms(0));
        assert_eq!(c.transitions(), 0);
    }

    #[test]
    fn inflight_retarget_last_write_wins() {
        let mut c = ctl();
        c.command(ms(0), PState(5));
        c.command(ms(3), PState(8));
        c.advance(ms(13));
        assert_eq!(c.effective(), PState(8));
        assert_eq!(c.transitions(), 2);
    }

    #[test]
    fn retarget_back_to_effective_still_needs_settle() {
        let mut c = ctl();
        c.command(ms(0), PState(5));
        // Command back to nominal while the downshift is in flight: the
        // PLL still has to relock, so it is not instantaneous.
        let settle = c.command(ms(3), PState(12));
        assert_eq!(settle, ms(13));
        c.advance(ms(13));
        assert_eq!(c.effective(), PState(12));
    }

    #[test]
    fn clamps_out_of_range_target() {
        let mut c = ctl();
        c.command(ms(0), PState(200));
        c.advance(ms(10));
        assert_eq!(c.effective(), PState(12));
    }

    #[test]
    fn advance_is_idempotent() {
        let mut c = ctl();
        c.command(ms(0), PState(3));
        c.advance(ms(10));
        c.advance(ms(20));
        c.advance(ms(10)); // re-reading an old timestamp is harmless
        assert_eq!(c.effective(), PState(3));
        assert_eq!(c.pending_settle(), None);
    }

    #[test]
    fn delayed_command_extends_settle() {
        let mut c = ctl();
        let settle = c.command_delayed(ms(0), PState(5), SimDuration::from_millis(40));
        assert_eq!(settle, ms(50));
        c.advance(ms(49));
        assert_eq!(c.effective(), PState(12));
        c.advance(ms(50));
        assert_eq!(c.effective(), PState(5));
        // Zero extra delay is exactly `command`.
        let mut d = ctl();
        assert_eq!(
            d.command_delayed(ms(0), PState(5), SimDuration::ZERO),
            ms(10)
        );
        // A delayed re-command of the current effective state is not
        // instant: the late-arriving write still goes through the PLL.
        let mut e = ctl();
        let settle = e.command_delayed(ms(0), PState(12), SimDuration::from_millis(40));
        assert_eq!(settle, ms(50));
        assert_eq!(e.transitions(), 1);
    }

    #[test]
    fn freq_helpers_follow_effective() {
        let mut c = ctl();
        c.command(ms(0), PState(0));
        c.advance(ms(10));
        assert!((c.freq_ghz() - 1.2).abs() < 1e-12);
        assert!((c.rel_freq() - 0.5).abs() < 1e-12);
        assert_eq!(c.vf_reduction_steps(), 12);
    }
}
