//! Uniform cluster capping search — the primitive behind the paper's
//! `Capping` baseline.
//!
//! Given per-server estimated power as a function of a *common* P-state,
//! find the highest uniform P-state whose aggregate stays within the
//! budget. "Blindly decreases the executing V/F of all the requests"
//! (Section 6.5) is exactly this search applied cluster-wide.

use crate::pstate::{PState, PStateTable};

/// Per-server inputs to the uniform capping search.
#[derive(Debug, Clone, Copy)]
pub struct ServerLoad {
    /// Busy-core fraction in `[0, 1]`.
    pub utilization: f64,
    /// Aggregate power intensity of the resident workload in `[0, 1]`.
    pub intensity: f64,
    /// Aggregate DVFS power sensitivity of the resident workload.
    pub gamma: f64,
}

/// Uniform capper over a homogeneous cluster.
#[derive(Debug, Clone)]
pub struct UniformCapper {
    model: crate::server_power::ServerPowerModel,
}

impl UniformCapper {
    /// Capper over servers sharing `model`.
    pub fn new(model: crate::server_power::ServerPowerModel) -> Self {
        UniformCapper { model }
    }

    /// Predicted aggregate power if every server ran at state `p`.
    pub fn aggregate_power(&self, p: PState, loads: &[ServerLoad]) -> f64 {
        loads
            .iter()
            .map(|l| self.model.power(p, l.utilization, l.intensity, l.gamma))
            .sum()
    }

    /// The highest uniform state meeting `budget_w`, or the floor state
    /// if none does (the caller must then shed load or use batteries).
    pub fn state_for_budget(&self, budget_w: f64, loads: &[ServerLoad]) -> PState {
        let table: &PStateTable = &self.model.table;
        for i in (0..table.len()).rev() {
            let p = PState(i as u8);
            if self.aggregate_power(p, loads) <= budget_w + 1e-9 {
                return p;
            }
        }
        table.min_state()
    }

    /// Watts saved by moving all servers from `from` to `to`.
    pub fn savings_w(&self, from: PState, to: PState, loads: &[ServerLoad]) -> f64 {
        self.aggregate_power(from, loads) - self.aggregate_power(to, loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server_power::ServerPowerModel;
    use proptest::prelude::*;

    fn capper() -> UniformCapper {
        UniformCapper::new(ServerPowerModel::paper_default())
    }

    fn busy(n: usize) -> Vec<ServerLoad> {
        vec![
            ServerLoad {
                utilization: 1.0,
                intensity: 1.0,
                gamma: 0.9,
            };
            n
        ]
    }

    #[test]
    fn full_cluster_at_nameplate() {
        let c = capper();
        let loads = busy(4);
        let top = c.model.table.max_state();
        assert!((c.aggregate_power(top, &loads) - 400.0).abs() < 1e-6);
    }

    #[test]
    fn generous_budget_keeps_nominal() {
        let c = capper();
        let loads = busy(4);
        assert_eq!(c.state_for_budget(400.0, &loads), PState(12));
    }

    #[test]
    fn tight_budget_steps_down_minimally() {
        let c = capper();
        let loads = busy(4);
        let p = c.state_for_budget(340.0, &loads); // Medium-PB on 4×100 W
        assert!(p < PState(12));
        assert!(c.aggregate_power(p, &loads) <= 340.0 + 1e-9);
        // Minimality: one step up violates.
        assert!(c.aggregate_power(PState(p.0 + 1), &loads) > 340.0);
    }

    #[test]
    fn infeasible_budget_floors() {
        let c = capper();
        let loads = busy(4);
        let p = c.state_for_budget(50.0, &loads);
        assert_eq!(p, PState(0));
        assert!(c.aggregate_power(p, &loads) > 50.0);
    }

    #[test]
    fn idle_servers_cost_only_idle_power() {
        let c = capper();
        let loads = vec![
            ServerLoad {
                utilization: 0.0,
                intensity: 1.0,
                gamma: 0.9,
            };
            4
        ];
        let top = c.model.table.max_state();
        assert!((c.aggregate_power(top, &loads) - 160.0).abs() < 1e-6);
        assert_eq!(c.state_for_budget(200.0, &loads), top);
    }

    #[test]
    fn savings_positive_downward() {
        let c = capper();
        let loads = busy(4);
        let s = c.savings_w(PState(12), PState(6), &loads);
        assert!(s > 0.0);
        assert_eq!(c.savings_w(PState(6), PState(6), &loads), 0.0);
    }

    #[test]
    fn memory_bound_cluster_saves_less() {
        let c = capper();
        let cpu = busy(4);
        let mem = vec![
            ServerLoad {
                utilization: 1.0,
                intensity: 1.0,
                gamma: 0.3,
            };
            4
        ];
        let s_cpu = c.savings_w(PState(12), PState(0), &cpu);
        let s_mem = c.savings_w(PState(12), PState(0), &mem);
        assert!(s_cpu > 2.0 * s_mem);
    }

    proptest! {
        #[test]
        fn prop_chosen_state_is_maximal_feasible(
            budget in 100.0f64..500.0,
            utils in proptest::collection::vec(0.0f64..1.0, 4),
        ) {
            let c = capper();
            let loads: Vec<ServerLoad> = utils
                .iter()
                .map(|&u| ServerLoad { utilization: u, intensity: 0.9, gamma: 0.8 })
                .collect();
            let p = c.state_for_budget(budget, &loads);
            let power = c.aggregate_power(p, &loads);
            if power <= budget + 1e-9 && p != c.model.table.max_state() {
                prop_assert!(c.aggregate_power(PState(p.0 + 1), &loads) > budget - 1e-6);
            }
        }
    }
}
