//! Power-distribution hierarchy and breaker model.
//!
//! Aggregates per-server power up through racks to the cluster feed, and
//! models the circuit breaker that makes sustained budget violations an
//! *outage* rather than an inconvenience — the end state a successful
//! DOPE attack drives an unprotected cluster toward (Fig 1's "unplanned
//! outages").
//!
//! Breakers follow an inverse-time characteristic approximated with a
//! sustained-overload rule: the breaker trips when load exceeds its
//! rating continuously for its trip delay. Short excursions reset.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// Breaker condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Carrying load normally.
    Closed,
    /// Over rating; will trip at the contained instant if not relieved.
    Overloaded {
        /// When the breaker opens if the overload persists.
        trips_at: SimTime,
    },
    /// Open: the feed is lost (an outage).
    Tripped {
        /// When the breaker opened.
        at: SimTime,
    },
}

/// One feed (rack PDU or cluster switchboard) with a breaker.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Feed {
    /// Only surfaced through Debug/serialized dumps of the hierarchy.
    #[allow(dead_code)]
    name: String,
    rating_w: f64,
    trip_delay: SimDuration,
    state: BreakerState,
    /// Server indices attached to this feed.
    members: Vec<usize>,
}

/// A two-level power hierarchy: servers grouped into rack feeds, racks
/// behind one cluster feed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerHierarchy {
    server_power_w: Vec<f64>,
    racks: Vec<Feed>,
    cluster: Feed,
}

impl PowerHierarchy {
    /// Build a hierarchy of `servers` nodes split evenly into `racks`
    /// racks. Rack breakers are rated at `rack_rating_w`; the cluster
    /// breaker at `cluster_rating_w`.
    pub fn new(
        servers: usize,
        racks: usize,
        rack_rating_w: f64,
        cluster_rating_w: f64,
        trip_delay: SimDuration,
    ) -> Self {
        assert!(servers > 0 && racks > 0 && racks <= servers);
        let mut rack_feeds = Vec::with_capacity(racks);
        for r in 0..racks {
            let members: Vec<usize> = (0..servers).filter(|s| s % racks == r).collect();
            rack_feeds.push(Feed {
                name: format!("rack{r}"),
                rating_w: rack_rating_w,
                trip_delay,
                state: BreakerState::Closed,
                members,
            });
        }
        PowerHierarchy {
            server_power_w: vec![0.0; servers],
            racks: rack_feeds,
            cluster: Feed {
                name: "cluster".to_string(),
                rating_w: cluster_rating_w,
                trip_delay,
                state: BreakerState::Closed,
                members: (0..servers).collect(),
            },
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.server_power_w.len()
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.racks.len()
    }

    /// Indices of the servers on rack `r`.
    pub fn rack_members(&self, r: usize) -> &[usize] {
        &self.racks[r].members
    }

    /// Report a server's instantaneous power and re-evaluate breakers.
    pub fn set_server_power(&mut self, now: SimTime, server: usize, watts: f64) {
        assert!(watts >= 0.0, "negative power: {watts}");
        self.server_power_w[server] = watts;
        self.evaluate(now);
    }

    /// Update many servers at once, then evaluate breakers once.
    pub fn set_all(&mut self, now: SimTime, watts: &[f64]) {
        assert_eq!(watts.len(), self.server_power_w.len());
        self.server_power_w.copy_from_slice(watts);
        self.evaluate(now);
    }

    /// Current aggregate cluster power, watts.
    pub fn cluster_power_w(&self) -> f64 {
        self.server_power_w.iter().sum()
    }

    /// Current aggregate power on rack `r`, watts.
    pub fn rack_power_w(&self, r: usize) -> f64 {
        self.racks[r]
            .members
            .iter()
            .map(|&s| self.server_power_w[s])
            .sum()
    }

    /// The cluster breaker state.
    pub fn cluster_breaker(&self) -> BreakerState {
        self.cluster.state
    }

    /// Breaker state of rack `r`.
    pub fn rack_breaker(&self, r: usize) -> BreakerState {
        self.racks[r].state
    }

    /// True if any breaker is open.
    pub fn any_tripped(&self) -> bool {
        matches!(self.cluster.state, BreakerState::Tripped { .. })
            || self
                .racks
                .iter()
                .any(|f| matches!(f.state, BreakerState::Tripped { .. }))
    }

    fn evaluate(&mut self, now: SimTime) {
        let cluster_load = self.cluster_power_w();
        let rack_loads: Vec<f64> = (0..self.racks.len()).map(|r| self.rack_power_w(r)).collect();
        for (feed, load) in self
            .racks
            .iter_mut()
            .zip(rack_loads)
            .chain(std::iter::once((&mut self.cluster, cluster_load)))
        {
            feed.state = match feed.state {
                BreakerState::Tripped { at } => BreakerState::Tripped { at },
                BreakerState::Closed => {
                    if load > feed.rating_w {
                        BreakerState::Overloaded {
                            trips_at: now + feed.trip_delay,
                        }
                    } else {
                        BreakerState::Closed
                    }
                }
                BreakerState::Overloaded { trips_at } => {
                    if load <= feed.rating_w {
                        BreakerState::Closed
                    } else if now >= trips_at {
                        BreakerState::Tripped { at: now }
                    } else {
                        BreakerState::Overloaded { trips_at }
                    }
                }
            };
        }
    }

    /// Advance time without a load change (lets pending overloads mature
    /// into trips). Call once per control slot.
    pub fn tick(&mut self, now: SimTime) {
        self.evaluate(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn rig() -> PowerHierarchy {
        // 4 servers, 2 racks; rack rating 220 W, cluster 420 W, 5 s delay.
        PowerHierarchy::new(4, 2, 220.0, 420.0, SimDuration::from_secs(5))
    }

    #[test]
    fn members_partition_servers() {
        let h = rig();
        assert_eq!(h.rack_members(0), &[0, 2]);
        assert_eq!(h.rack_members(1), &[1, 3]);
    }

    #[test]
    fn aggregation() {
        let mut h = rig();
        h.set_all(s(0), &[50.0, 60.0, 70.0, 80.0]);
        assert!((h.cluster_power_w() - 260.0).abs() < 1e-12);
        assert!((h.rack_power_w(0) - 120.0).abs() < 1e-12);
        assert!((h.rack_power_w(1) - 140.0).abs() < 1e-12);
    }

    #[test]
    fn sustained_overload_trips() {
        let mut h = rig();
        h.set_all(s(0), &[110.0, 0.0, 120.0, 0.0]); // rack0 = 230 > 220
        assert!(matches!(h.rack_breaker(0), BreakerState::Overloaded { .. }));
        h.tick(s(4));
        assert!(matches!(h.rack_breaker(0), BreakerState::Overloaded { .. }));
        h.tick(s(5));
        assert!(matches!(h.rack_breaker(0), BreakerState::Tripped { .. }));
        assert!(h.any_tripped());
    }

    #[test]
    fn relieved_overload_resets() {
        let mut h = rig();
        h.set_all(s(0), &[110.0, 0.0, 120.0, 0.0]);
        h.set_all(s(3), &[100.0, 0.0, 100.0, 0.0]); // back under rating
        assert_eq!(h.rack_breaker(0), BreakerState::Closed);
        // A fresh overload restarts the full delay.
        h.set_all(s(4), &[110.0, 0.0, 120.0, 0.0]);
        h.tick(s(8));
        assert!(matches!(h.rack_breaker(0), BreakerState::Overloaded { .. }));
        h.tick(s(9));
        assert!(matches!(h.rack_breaker(0), BreakerState::Tripped { .. }));
    }

    #[test]
    fn cluster_breaker_sees_total() {
        let mut h = rig();
        // Each rack under its own rating, but total over cluster rating.
        h.set_all(s(0), &[109.0, 109.0, 109.0, 109.0]); // 436 > 420, racks at 218
        assert_eq!(h.rack_breaker(0), BreakerState::Closed);
        assert!(matches!(
            h.cluster_breaker(),
            BreakerState::Overloaded { .. }
        ));
        h.tick(s(5));
        assert!(matches!(h.cluster_breaker(), BreakerState::Tripped { .. }));
    }

    #[test]
    fn tripped_is_latched() {
        let mut h = rig();
        h.set_all(s(0), &[110.0, 0.0, 120.0, 0.0]);
        h.tick(s(5));
        assert!(h.any_tripped());
        // Load relief does not close an open breaker.
        h.set_all(s(6), &[0.0, 0.0, 0.0, 0.0]);
        assert!(h.any_tripped());
    }

    #[test]
    fn single_server_update() {
        let mut h = rig();
        h.set_server_power(s(0), 2, 99.0);
        assert!((h.rack_power_w(0) - 99.0).abs() < 1e-12);
        assert!((h.cluster_power_w() - 99.0).abs() < 1e-12);
    }
}
