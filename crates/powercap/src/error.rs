//! Typed configuration errors for powercap components.
//!
//! Constructors that take user-supplied parameters return these instead
//! of panicking, so callers building configs from files or CLI flags get
//! a diagnosable error rather than an abort. Internal-invariant checks
//! (values the library itself derives) remain `assert!`s with messages
//! naming the invariant.

use std::fmt;

/// Why a powercap component rejected its configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// A value that must be strictly positive was not.
    NonPositive {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A count parameter that must be at least one was zero.
    ZeroCount {
        /// Parameter name.
        what: &'static str,
    },
    /// A value fell outside its required interval.
    OutOfRange {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            ConfigError::ZeroCount { what } => write!(f, "{what} must be at least 1"),
            ConfigError::OutOfRange {
                what,
                value,
                lo,
                hi,
            } => write!(f, "{what} = {value} is outside [{lo}, {hi}]"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_parameter() {
        let e = ConfigError::NonPositive {
            what: "capacity_j",
            value: -1.0,
        };
        assert!(format!("{e}").contains("capacity_j"));
        let e = ConfigError::ZeroCount { what: "window_len" };
        assert!(format!("{e}").contains("window_len"));
        let e = ConfigError::OutOfRange {
            what: "charge_efficiency",
            value: 2.0,
            lo: 0.0,
            hi: 1.0,
        };
        assert!(format!("{e}").contains("charge_efficiency"));
    }
}
