//! ACPI P-state ladder: frequency steps, voltage model, relative dynamic
//! power.
//!
//! The paper's testbed exposes CPU frequencies "from 1.2 GHz to 2.4 GHz at
//! an interval of 0.1 GHz" (Section 3). We reproduce exactly that ladder.
//! Voltage scales affinely with frequency (a good fit for the DVFS range
//! of real parts), and dynamic power follows the classic `C·f·V²` law, so
//! relative dynamic power is close to cubic in frequency.

use serde::{Deserialize, Serialize};

/// Index into a [`PStateTable`]. Index 0 is the *slowest* state; the
/// highest index is nominal frequency. (Note: opposite of ACPI numbering,
/// where P0 is fastest — an ascending ladder keeps throttling arithmetic
/// readable: "step down" = decrement.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PState(pub u8);

impl PState {
    /// Step one state down (slower), saturating at the floor.
    pub fn lower(self) -> PState {
        PState(self.0.saturating_sub(1))
    }

    /// Step one state up (faster), clamped by the caller to the table max.
    pub fn raise(self) -> PState {
        PState(self.0 + 1)
    }
}

/// An immutable DVFS ladder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PStateTable {
    /// Frequencies in GHz, ascending.
    freqs_ghz: Vec<f64>,
    /// Core voltage at each state, ascending.
    volts: Vec<f64>,
    /// `f·V²` at each state, normalized to 1.0 at the top state.
    rel_dyn_power: Vec<f64>,
}

impl PStateTable {
    /// Build a ladder over `[f_min_ghz, f_max_ghz]` with `steps` states
    /// and voltage ramping affinely from `v_min` to `v_max`.
    pub fn new(f_min_ghz: f64, f_max_ghz: f64, steps: usize, v_min: f64, v_max: f64) -> Self {
        assert!(steps >= 2, "need at least two P-states");
        assert!(f_max_ghz > f_min_ghz && f_min_ghz > 0.0);
        assert!(v_max >= v_min && v_min > 0.0);
        let mut freqs_ghz = Vec::with_capacity(steps);
        let mut volts = Vec::with_capacity(steps);
        for i in 0..steps {
            let a = i as f64 / (steps - 1) as f64;
            freqs_ghz.push(f_min_ghz + a * (f_max_ghz - f_min_ghz));
            volts.push(v_min + a * (v_max - v_min));
        }
        let top = freqs_ghz[steps - 1] * volts[steps - 1] * volts[steps - 1];
        let rel_dyn_power = freqs_ghz
            .iter()
            .zip(&volts)
            .map(|(f, v)| f * v * v / top)
            .collect();
        PStateTable {
            freqs_ghz,
            volts,
            rel_dyn_power,
        }
    }

    /// The paper's ladder: 1.2–2.4 GHz in 0.1 GHz steps (13 states),
    /// 0.8–1.2 V.
    pub fn paper_default() -> Self {
        PStateTable::new(1.2, 2.4, 13, 0.8, 1.2)
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.freqs_ghz.len()
    }

    /// Always false (a table has ≥ 2 states by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The fastest (nominal) state.
    pub fn max_state(&self) -> PState {
        PState((self.len() - 1) as u8)
    }

    /// The slowest state.
    pub fn min_state(&self) -> PState {
        PState(0)
    }

    /// Clamp an arbitrary index into the valid range.
    pub fn clamp(&self, p: PState) -> PState {
        PState(p.0.min((self.len() - 1) as u8))
    }

    /// Frequency of state `p` in GHz.
    pub fn freq_ghz(&self, p: PState) -> f64 {
        self.freqs_ghz[p.0 as usize]
    }

    /// Core voltage of state `p`.
    pub fn voltage(&self, p: PState) -> f64 {
        self.volts[p.0 as usize]
    }

    /// Nominal (top-state) frequency in GHz.
    pub fn max_freq_ghz(&self) -> f64 {
        *self.freqs_ghz.last().expect("non-empty")
    }

    /// Frequency of `p` relative to nominal, in `(0, 1]`.
    pub fn rel_freq(&self, p: PState) -> f64 {
        self.freq_ghz(p) / self.max_freq_ghz()
    }

    /// Dynamic power of `p` relative to nominal, in `(0, 1]`.
    pub fn rel_dyn_power(&self, p: PState) -> f64 {
        self.rel_dyn_power[p.0 as usize]
    }

    /// The slowest state whose relative dynamic power is at least `rel`,
    /// i.e. the state a RAPL-style governor picks to meet a power cap:
    /// the *fastest* state with `rel_dyn_power <= rel`. Falls back to the
    /// slowest state when even that exceeds `rel`.
    pub fn fastest_below(&self, rel: f64) -> PState {
        for i in (0..self.len()).rev() {
            if self.rel_dyn_power[i] <= rel + 1e-12 {
                return PState(i as u8);
            }
        }
        self.min_state()
    }

    /// Iterate all states, slowest first.
    pub fn states(&self) -> impl Iterator<Item = PState> + '_ {
        (0..self.len()).map(|i| PState(i as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_ladder_shape() {
        let t = PStateTable::paper_default();
        assert_eq!(t.len(), 13);
        assert!((t.freq_ghz(PState(0)) - 1.2).abs() < 1e-12);
        assert!((t.freq_ghz(t.max_state()) - 2.4).abs() < 1e-12);
        assert!((t.freq_ghz(PState(1)) - 1.3).abs() < 1e-12);
        assert!((t.voltage(PState(0)) - 0.8).abs() < 1e-12);
        assert!((t.voltage(t.max_state()) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn rel_power_normalized_and_monotone() {
        let t = PStateTable::paper_default();
        assert!((t.rel_dyn_power(t.max_state()) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for p in t.states() {
            let r = t.rel_dyn_power(p);
            assert!(r > prev, "power not monotone at {p:?}");
            prev = r;
        }
        // Bottom state of the paper ladder: 1.2·0.8² / 2.4·1.2² ≈ 0.2222.
        assert!((t.rel_dyn_power(PState(0)) - 0.2222).abs() < 1e-3);
    }

    #[test]
    fn rel_freq_bounds() {
        let t = PStateTable::paper_default();
        assert!((t.rel_freq(PState(0)) - 0.5).abs() < 1e-12);
        assert!((t.rel_freq(t.max_state()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fastest_below_picks_correct_state() {
        let t = PStateTable::paper_default();
        // rel=1.0 → top state.
        assert_eq!(t.fastest_below(1.0), t.max_state());
        // rel just under the top state's power → one below.
        let second = t.rel_dyn_power(PState(11));
        assert_eq!(t.fastest_below(second), PState(11));
        // rel below everything → slowest state.
        assert_eq!(t.fastest_below(0.0), PState(0));
    }

    #[test]
    fn lower_raise_saturate() {
        let t = PStateTable::paper_default();
        assert_eq!(PState(0).lower(), PState(0));
        assert_eq!(PState(3).lower(), PState(2));
        assert_eq!(t.clamp(PState(200)), t.max_state());
        assert_eq!(t.clamp(PState(5)), PState(5));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_state() {
        let _ = PStateTable::new(1.0, 2.0, 1, 0.8, 1.2);
    }

    proptest! {
        #[test]
        fn prop_fastest_below_satisfies_cap(rel in 0.0f64..1.5) {
            let t = PStateTable::paper_default();
            let p = t.fastest_below(rel);
            // Either the chosen state satisfies the cap...
            let ok = t.rel_dyn_power(p) <= rel + 1e-9;
            // ...or the cap is infeasible and we returned the floor.
            let infeasible = p == t.min_state() && t.rel_dyn_power(p) > rel;
            prop_assert!(ok || infeasible);
            // And no faster state would also satisfy it.
            if p != t.max_state() && ok {
                prop_assert!(t.rel_dyn_power(PState(p.0 + 1)) > rel + 1e-12);
            }
        }

        #[test]
        fn prop_freq_monotone_in_state(i in 0u8..12, j in 0u8..12) {
            let t = PStateTable::paper_default();
            if i < j {
                prop_assert!(t.freq_ghz(PState(i)) < t.freq_ghz(PState(j)));
                prop_assert!(t.voltage(PState(i)) <= t.voltage(PState(j)));
            }
        }
    }
}
