//! Chaos drill: run the headline DOPE scenario while the control plane
//! itself degrades — sensors drop samples, a telemetry blackout blinds
//! the monitor, actuator writes get lost, and a node crashes and
//! reboots mid-attack.
//!
//! The point: power management is a *control loop*, and a loop that
//! only works with perfect feedback is a liability in exactly the
//! situations that matter. This drill shows the hardened plane holding
//! the budget (watchdog safe cap, last-good-value telemetry, actuator
//! read-back) while the fault layer does its worst, and prints the
//! fault ledger the simulator kept.
//!
//! ```text
//! cargo run --release --example chaos_drill
//! ```

use antidope_repro::prelude::*;
use dcmetrics::export::Table;
use rayon::prelude::*;

fn drill_faults() -> FaultConfig {
    FaultConfig {
        sensor_dropout_p: 0.10,
        sensor_noise_w: 2.0,
        blackouts: vec![(SimTime::from_secs(120), SimTime::from_secs(180))],
        actuator_loss_p: 0.10,
        actuator_delay_p: 0.05,
        crashes: vec![CrashEvent {
            node: 1,
            at: SimTime::from_secs(60),
        }],
        reboot_after: SimDuration::from_secs(30),
        ..FaultConfig::default()
    }
}

fn main() {
    let window_s = 300;
    let attack_rate = 390.0;
    let seed = 2019;

    println!(
        "Chaos drill: Anti-DOPE vs Capping at Low-PB, {attack_rate:.0} req/s flood,\n\
         10% sensor dropout + 60 s telemetry blackout + 10% actuator loss\n\
         + node 1 crash at t=60 s (reboots after 30 s), {window_s} s window\n"
    );

    let schemes = [SchemeKind::Capping, SchemeKind::AntiDope];
    let reports: Vec<(SchemeKind, SimReport)> = schemes
        .par_iter()
        .map(|&scheme| {
            let factory = |exp: &ExperimentConfig| {
                let horizon = SimTime::ZERO + exp.duration;
                let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
                let sources: Vec<Box<dyn TrafficSource>> = vec![
                    Box::new(NormalUsers::new(
                        trace,
                        ServiceMix::alios_normal(),
                        80.0,
                        1_000,
                        60,
                        0,
                        horizon,
                        exp.seed,
                    )),
                    Box::new(FloodSource::against_service(
                        AttackTool::HttpLoad { rate: attack_rate },
                        ServiceKind::CollaFilt,
                        50_000,
                        40,
                        1 << 40,
                        SimTime::from_secs(5),
                        horizon,
                        exp.seed ^ 0x5EED,
                    )),
                ];
                sources
            };
            let mut cluster = ClusterConfig::paper_rack(BudgetLevel::Low);
            cluster.faults = Some(drill_faults());
            let mut exp = ExperimentConfig::paper_window(cluster, scheme, seed);
            exp.duration = SimDuration::from_secs(window_s);
            (scheme, antidope::run_experiment(&exp, &factory))
        })
        .collect();

    let mut t = Table::new(
        "Service under chaos",
        &["scheme", "p90_ms", "availability", "peak_W", "violations"],
    );
    for (k, r) in &reports {
        t.push_row(vec![
            k.name().to_string(),
            Table::fmt_f64(r.normal_latency.p90_ms),
            format!("{:.1}%", r.availability() * 100.0),
            Table::fmt_f64(r.power.peak_w),
            r.power.violations.to_string(),
        ]);
    }
    println!("{}", t.to_text());

    let mut f = Table::new(
        "Fault ledger",
        &[
            "scheme",
            "dropouts",
            "blackout_samples",
            "act_lost",
            "act_retries",
            "act_giveups",
            "crashes",
            "reboots",
            "lost_inflight",
            "degraded_s",
            "mttr_s",
        ],
    );
    for (k, r) in &reports {
        let fr: FaultReport = r.faults.clone().unwrap_or_default();
        f.push_row(vec![
            k.name().to_string(),
            fr.sensor_dropouts.to_string(),
            fr.blackout_samples.to_string(),
            fr.actuator_lost.to_string(),
            fr.actuator_retries.to_string(),
            fr.actuator_giveups.to_string(),
            fr.crashes.to_string(),
            fr.reboots.to_string(),
            fr.lost_to_crash.to_string(),
            Table::fmt_f64(fr.time_degraded_s),
            Table::fmt_f64(fr.mttr_s),
        ]);
    }
    println!("{}", f.to_text());
    println!(
        "The watchdog's uniform safe cap holds the budget through the blackout; the\n\
         read-back loop re-issues lost DVFS writes; the NLB routes around the dead\n\
         node until its reboot. Anti-DOPE's tail-latency edge survives the chaos."
    );
}
