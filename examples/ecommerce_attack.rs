//! E-commerce under attack: run the full Table-2 scheme comparison on
//! the paper's EC workload at one oversubscription level, and print the
//! operator-facing dashboard the paper's Section 6 summarizes.
//!
//! ```text
//! cargo run --release --example ecommerce_attack [budget] [attack_rps]
//!     budget      normal|high|medium|low   [default: medium]
//!     attack_rps  aggregate flood rate     [default: 390]
//! ```

use antidope_repro::prelude::*;
use dcmetrics::export::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let budget = match args.first().map(|s| s.as_str()) {
        Some("normal") => BudgetLevel::Normal,
        Some("high") => BudgetLevel::High,
        Some("low") => BudgetLevel::Low,
        _ => BudgetLevel::Medium,
    };
    let attack_rate: f64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(390.0);

    let factory = move |exp: &ExperimentConfig| {
        let horizon = SimTime::ZERO + exp.duration;
        let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
        let sources: Vec<Box<dyn TrafficSource>> = vec![
            Box::new(NormalUsers::new(
                trace,
                ServiceMix::alios_normal(),
                80.0,
                1_000,
                60,
                0,
                horizon,
                exp.seed,
            )),
            Box::new(FloodSource::against_service(
                AttackTool::HttpLoad { rate: attack_rate },
                ServiceKind::CollaFilt,
                50_000,
                40,
                1 << 40,
                SimTime::from_secs(5),
                horizon,
                exp.seed ^ 0x5EED,
            )),
        ];
        sources
    };

    println!(
        "EC application at {budget}, Colla-Filt DOPE at {attack_rate:.0} req/s, 300 s window\n"
    );
    let mut table = Table::new(
        "Scheme comparison (legitimate users)",
        &[
            "scheme",
            "mean_ms",
            "p90_ms",
            "availability",
            "drop_rate",
            "peak_W",
            "violations",
            "battery_min_soc",
        ],
    );
    for scheme in SchemeKind::EVALUATED {
        let mut exp =
            ExperimentConfig::paper_window(ClusterConfig::paper_rack(budget), scheme, 7);
        exp.duration = SimDuration::from_secs(300);
        let r = antidope::run_experiment(&exp, &factory);
        table.push_row(vec![
            r.scheme.clone(),
            Table::fmt_f64(r.normal_latency.mean_ms),
            Table::fmt_f64(r.normal_latency.p90_ms),
            format!("{:.1}%", r.availability() * 100.0),
            format!("{:.1}%", r.normal_sla.drop_rate() * 100.0),
            Table::fmt_f64(r.power.peak_w),
            r.power.violations.to_string(),
            Table::fmt_f64(r.battery.min_soc),
        ]);
    }
    println!("{}", table.to_text());
}
