//! Firewall evasion: watch the Fig-12 DOPE algorithm probe a
//! DDoS-deflate-style firewall, get caught, rotate its botnet, and
//! converge just under the detection threshold — then see what that
//! converged flow does to an oversubscribed cluster.
//!
//! ```text
//! cargo run --release --example firewall_evasion [bots]
//!     bots   botnet size  [default: 4 — small enough to get caught]
//! ```

use antidope_repro::prelude::*;
use netsim::firewall::{Firewall, FirewallConfig, FirewallVerdict};
use workloads::dope::DopePhase;
use workloads::source::SourceEvent;

fn main() {
    let bots: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    println!("Phase 1: probing a deflate firewall (threshold 150 req/s per source)\n");
    let horizon = SimTime::from_secs(300);
    let mut attacker = DopeAttacker::new(
        DopeConfig {
            victim: ServiceKind::CollaFilt,
            initial_rate: 100.0,
            bots,
            max_rate: 4000.0,
            ..DopeConfig::default()
        },
        50_000,
        1 << 40,
        SimTime::ZERO,
        horizon,
        0xD09E,
    );
    let mut firewall = Firewall::new(SimTime::ZERO, FirewallConfig::default());
    let mut now = SimTime::ZERO;
    while let Some(req) = attacker.next_request(now) {
        now = req.arrival;
        if firewall.inspect(now, req.source) == FirewallVerdict::Blocked {
            attacker.feedback(now, SourceEvent::Blocked(req.source));
        }
    }
    println!("  t(s)   aggregate req/s   per-bot req/s   detected?");
    for h in attacker.history() {
        println!(
            "  {:>5.0}   {:>15.1}   {:>13.1}   {}",
            h.at.as_secs_f64(),
            h.rate,
            h.rate / bots as f64,
            if h.detected { "BLOCKED → back off" } else { "" }
        );
    }
    println!(
        "\n  converged: {} at {:.1} req/s aggregate ({:.1} per bot, threshold 150)\n",
        matches!(attacker.phase(), DopePhase::Converged),
        attacker.rate(),
        attacker.per_bot_rate()
    );

    println!("Phase 2: the converged flow against a Medium-PB rack (unmanaged)\n");
    let converged_rate = attacker.rate();
    let factory = move |exp: &ExperimentConfig| {
        let horizon = SimTime::ZERO + exp.duration;
        let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
        let sources: Vec<Box<dyn TrafficSource>> = vec![
            Box::new(NormalUsers::new(
                trace,
                ServiceMix::alios_normal(),
                80.0,
                1_000,
                60,
                0,
                horizon,
                exp.seed,
            )),
            // A fresh botnet large enough that the converged aggregate
            // stays stealthy per source.
            Box::new(FloodSource::against_service(
                AttackTool::HttpLoad {
                    rate: converged_rate,
                },
                ServiceKind::CollaFilt,
                60_000,
                40,
                1 << 41,
                SimTime::from_secs(5),
                horizon,
                77,
            )),
        ];
        sources
    };
    let mut exp = ExperimentConfig::paper_window(
        ClusterConfig::paper_rack(BudgetLevel::Medium),
        SchemeKind::None,
        3,
    );
    exp.duration = SimDuration::from_secs(120);
    let r = antidope::run_experiment(&exp, &factory);
    println!("  {}", r.oneline());
    println!(
        "  firewall blocked {} requests; power exceeded the {:.0} W budget in {} slots",
        r.traffic.firewall_blocked, r.power.supply_w, r.power.violations
    );
    println!("\nThat is the DOPE region of Fig 11: invisible to the perimeter, lethal to the budget.");
}
