//! Rack-concentrated flood: the hierarchical blind spot.
//!
//! A topology-aware NLB homes every URL on a rack (`url mod racks`).
//! An attacker who maps that affinity can pick URLs from one congruence
//! class and land its whole flood on a single rack: the *rack* breaker
//! overloads while the *facility* meter still shows comfortable
//! headroom — flat facility-level telemetry never sees the attack.
//!
//! ```text
//! cargo run --release --example rack_attack [-- --topology racks=R,pdus=P]
//! ```
//!
//! Three arms on a 16-node cluster (default 4 racks / 2 PDUs):
//!
//! * **no attack** — the goodput baseline.
//! * **undefended** — hierarchy observes but does not act: the target
//!   rack's breaker trips and takes all of its nodes down latched.
//! * **defended** — the per-rack guard pins the breaching rack to the
//!   safe P-state until the hold expires: no trip, goodput restored.

use antidope_repro::prelude::*;

/// Parse `--topology racks=R,pdus=P` / `--topology=racks=R,pdus=P`
/// (default 4 racks, 2 PDUs).
fn cli_topology() -> (usize, usize) {
    let (mut racks, mut pdus) = (4, 2);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if a == "--topology" {
            args.next()
        } else {
            a.strip_prefix("--topology=").map(str::to_string)
        };
        if let Some(v) = value {
            for part in v.split(',') {
                match part.split_once('=') {
                    Some(("racks", n)) => {
                        racks = n.parse().expect("racks expects a positive integer")
                    }
                    Some(("pdus", n)) => pdus = n.parse().expect("pdus expects a positive integer"),
                    _ => panic!("--topology expects racks=R,pdus=P, got {part:?}"),
                }
            }
        }
    }
    (racks, pdus)
}

/// The shared topology: nested budgets without extra oversubscription
/// headroom, so a concentrated flood can actually overload one rack
/// while the facility (which the flood uses only 1/racks of) idles.
fn topology(racks: usize, pdus: usize, defend: bool) -> TopologyConfig {
    let mut t = TopologyConfig::with_racks(racks, pdus);
    t.rack_oversub = 1.0;
    t.pdu_oversub = 1.0;
    t.row_oversub = 1.0;
    t.defend = defend;
    t
}

fn experiment(racks: usize, pdus: usize, defend: bool, seed: u64) -> ExperimentConfig {
    let mut cluster = ClusterConfig::scaled(BudgetLevel::Low);
    cluster.topology = Some(topology(racks, pdus, defend));
    let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::None, seed);
    exp.duration = SimDuration::from_secs(120);
    exp
}

fn sources(
    racks: usize,
    attack_rate: f64,
) -> impl Fn(&ExperimentConfig) -> Vec<Box<dyn TrafficSource>> {
    move |exp: &ExperimentConfig| {
        let horizon = SimTime::ZERO + exp.duration;
        let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
        let mut out: Vec<Box<dyn TrafficSource>> = vec![Box::new(NormalUsers::new(
            trace,
            ServiceMix::alios_normal(),
            80.0,
            1_000,
            60,
            0,
            horizon,
            exp.seed,
        ))];
        if attack_rate > 0.0 {
            out.push(Box::new(ConcentratingFloodSource::against_service(
                attack_rate,
                ServiceKind::CollaFilt,
                racks,
                900, // URL range base: one URL per rack congruence class
                exp.duration, // never re-aims inside the window
                50_000,
                40,
                1 << 40,
                SimTime::from_secs(5),
                horizon,
                exp.seed ^ 0x5EED,
            )));
        }
        out
    }
}

fn describe(label: &str, report: &SimReport) {
    println!("{label}:");
    println!(
        "    facility: avg {:.0} W / peak {:.0} W against {:.0} W ({} violating slots)",
        report.power.avg_w, report.power.peak_w, report.power.supply_w, report.power.violations
    );
    println!(
        "    normal users: completion {:.1}%, mean {:.1} ms",
        report.normal_sla.completion_rate() * 100.0,
        report.normal_latency.mean_ms
    );
    if let Some(t) = &report.topology {
        let peaks: Vec<String> = t.rack_peak_w.iter().map(|w| format!("{w:.0}")).collect();
        println!(
            "    racks: peaks [{}] W, breach slots {:?}, facility breach slots {}",
            peaks.join(", "),
            t.rack_breach_slots,
            t.facility_breach_slots
        );
        for (r, at) in t.rack_trip_at_s.iter().enumerate() {
            if let Some(at) = at {
                println!("    rack {r} breaker TRIPPED at {at:.0} s (nodes latched off)");
            }
        }
        println!(
            "    hottest rack by energy: {} (guard active {} slots)",
            t.hottest_rack, t.guard_slots
        );
    }
    println!();
}

fn main() {
    let (racks, pdus) = cli_topology();
    let seed = 42;
    println!(
        "16 × 100 W cluster, Low-PB = 1280 W facility, {racks} racks / {pdus} PDUs.\n\
         Concentrating flood: 420 req/s of Colla-Filt aimed at one rack's URL class.\n"
    );

    let clean = antidope::run_experiment(&experiment(racks, pdus, false, seed), &sources(racks, 0.0));
    describe("no attack", &clean);

    let undefended =
        antidope::run_experiment(&experiment(racks, pdus, false, seed), &sources(racks, 420.0));
    describe("undefended (observe only)", &undefended);

    let defended =
        antidope::run_experiment(&experiment(racks, pdus, true, seed), &sources(racks, 420.0));
    describe("defended (per-rack guard)", &defended);

    let restored =
        defended.normal_sla.completion_rate() / clean.normal_sla.completion_rate().max(1e-9);
    println!(
        "The facility meter never saw a violation in any arm; only the rack-level\n\
         view catches the concentrated flood. The guard holds goodput at {:.1}% of\n\
         the attack-free baseline without tripping a single breaker.",
        restored * 100.0
    );
}
