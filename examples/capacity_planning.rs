//! Capacity planning: how aggressively can this cluster oversubscribe
//! its power feed and still meet its SLA under a worst-case DOPE flood,
//! with and without Anti-DOPE?
//!
//! Sweeps (budget level × attack rate) for Capping and Anti-DOPE and
//! prints each cell's p90 against a 100 ms SLA — the frontier shows how
//! much provisioning Anti-DOPE buys back.
//!
//! ```text
//! cargo run --release --example capacity_planning \
//!     [-- --shards N] [-- --retry] [-- --topology racks=R,pdus=P]
//! ```
//!
//! `--shards N` (default 1) runs every cell on the sharded parallel
//! engine with `N` dataplane shards. `--retry` enables client-side
//! request resilience in every cell and appends its aggregate retry
//! accounting per scheme. `--topology racks=R,pdus=P` attaches a
//! hierarchical power topology to every cell and appends per-scheme
//! rack-level breach accounting — the planning question then becomes
//! how deep *per-rack* oversubscription can go, not just facility-wide.

use antidope_repro::prelude::*;
use dcmetrics::export::Table;
use rayon::prelude::*;

const SLA_P90_MS: f64 = 100.0;

/// Parse `--shards N` / `--shards=N`, `--retry`, and
/// `--topology racks=R,pdus=P` from the command line (defaults: 1
/// shard, no retry, no topology).
fn cli_args() -> (usize, bool, Option<TopologyConfig>) {
    let mut shards = 1;
    let mut retry = false;
    let mut topology = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--retry" {
            retry = true;
            continue;
        }
        if let Some(v) = match a.as_str() {
            "--topology" => args.next(),
            _ => a.strip_prefix("--topology=").map(str::to_string),
        } {
            let (mut racks, mut pdus) = (1, 1);
            for part in v.split(',') {
                match part.split_once('=') {
                    Some(("racks", n)) => {
                        racks = n.parse().expect("racks expects a positive integer")
                    }
                    Some(("pdus", n)) => pdus = n.parse().expect("pdus expects a positive integer"),
                    _ => panic!("--topology expects racks=R,pdus=P, got {part:?}"),
                }
            }
            topology = Some(TopologyConfig::with_racks(racks, pdus));
            continue;
        }
        let value = if a == "--shards" {
            args.next()
        } else {
            a.strip_prefix("--shards=").map(str::to_string)
        };
        if let Some(v) = value {
            shards = v.parse().expect("--shards expects a positive integer");
        }
    }
    (shards, retry, topology)
}

fn main() {
    let (shards, retry, topology) = cli_args();
    const RATES: [f64; 4] = [0.0, 200.0, 390.0, 600.0];
    let rates = RATES;
    let budgets = BudgetLevel::ALL;
    let schemes = [SchemeKind::Capping, SchemeKind::AntiDope];

    let mut cells: Vec<(SchemeKind, BudgetLevel, f64)> = Vec::new();
    for &s in &schemes {
        for &b in &budgets {
            for &r in &RATES {
                cells.push((s, b, r));
            }
        }
    }

    println!(
        "Sweeping {} cells (scheme × budget × attack rate), 120 s each…\n",
        cells.len()
    );
    let topology = &topology;
    let reports: Vec<(SchemeKind, BudgetLevel, f64, SimReport)> = cells
        .par_iter()
        .map(|&(scheme, budget, rate)| {
            let factory = move |exp: &ExperimentConfig| {
                let horizon = SimTime::ZERO + exp.duration;
                let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
                let mut v: Vec<Box<dyn TrafficSource>> = vec![Box::new(NormalUsers::new(
                    trace,
                    ServiceMix::alios_normal(),
                    80.0,
                    1_000,
                    60,
                    0,
                    horizon,
                    exp.seed,
                ))];
                if rate > 0.0 {
                    v.push(Box::new(FloodSource::against_service(
                        AttackTool::HttpLoad { rate },
                        ServiceKind::CollaFilt,
                        50_000,
                        40,
                        1 << 40,
                        SimTime::from_secs(5),
                        horizon,
                        exp.seed ^ 0x5EED,
                    )));
                }
                v
            };
            let mut exp =
                ExperimentConfig::paper_window(ClusterConfig::paper_rack(budget), scheme, 11);
            exp.cluster.shards = shards;
            if retry {
                exp.cluster.retry = Some(RetryConfig::default());
            }
            exp.cluster.topology = *topology;
            exp.duration = SimDuration::from_secs(120);
            (scheme, budget, rate, antidope::run_experiment(&exp, &factory))
        })
        .collect();

    for scheme in schemes {
        let mut t = Table::new(
            format!("{} — p90 of legitimate users, ms (SLA: {SLA_P90_MS} ms)", scheme.name()),
            &["budget", "no attack", "200 rps", "390 rps", "600 rps", "SLA held at"],
        );
        for budget in budgets {
            let mut row = vec![budget.name().to_string()];
            let mut held = Vec::new();
            for rate in rates {
                let r = &reports
                    .iter()
                    .find(|(s, b, rr, _)| *s == scheme && *b == budget && *rr == rate)
                    .expect("cell exists")
                    .3;
                let p90 = r.normal_latency.p90_ms;
                let ok = p90 <= SLA_P90_MS && r.availability() > 0.7;
                row.push(format!("{}{}", Table::fmt_f64(p90), if ok { "" } else { " !" }));
                if ok {
                    held.push(format!("{rate:.0}"));
                }
            }
            row.push(if held.len() == rates.len() {
                "all rates".to_string()
            } else if held.is_empty() {
                "none".to_string()
            } else {
                format!("{} rps", held.join(", "))
            });
            t.push_row(row);
        }
        println!("{}", t.to_text());
        // Aggregate resilience accounting across the scheme's cells.
        let totals = reports
            .iter()
            .filter(|(s, ..)| *s == scheme)
            .filter_map(|(.., r)| r.retry.as_ref())
            .fold(RetryReport::default(), |mut acc, r| {
                acc.attempts += r.attempts;
                acc.recovered += r.recovered;
                acc.exhausted += r.exhausted;
                acc.breaker_trips += r.breaker_trips;
                acc.rerouted += r.rerouted;
                acc
            });
        if retry {
            println!(
                "  resilience across {} cells: {} retry attempts, {} recovered, \
                 {} exhausted, {} breaker trips, {} rerouted\n",
                budgets.len() * rates.len(),
                totals.attempts,
                totals.recovered,
                totals.exhausted,
                totals.breaker_trips,
                totals.rerouted
            );
        }
        if topology.is_some() {
            let (breach, trips) = reports
                .iter()
                .filter(|(s, ..)| *s == scheme)
                .filter_map(|(.., r)| r.topology.as_ref())
                .fold((0u64, 0usize), |(b, k), t| {
                    (
                        b + t.rack_breach_slots.iter().sum::<u64>(),
                        k + t.rack_trip_at_s.iter().flatten().count(),
                    )
                });
            println!(
                "  topology across {} cells: {} rack breach slots, {} rack breaker trips\n",
                budgets.len() * rates.len(),
                breach,
                trips
            );
        }
    }
    println!("Cells marked '!' violate the SLA; Anti-DOPE holds it at deeper oversubscription.");
}
