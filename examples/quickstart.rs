//! Quickstart: simulate the paper's 4-node rack under a DOPE attack and
//! compare Anti-DOPE against plain power capping.
//!
//! ```text
//! cargo run --release --example quickstart \
//!     [-- --shards N] [-- --retry] [-- --topology racks=R,pdus=P]
//! ```
//!
//! `--shards N` (default 1) runs the sharded parallel engine with `N`
//! dataplane shards; the default keeps the original event-driven
//! engine. `--retry` switches on client-side request resilience
//! (timeout + capped exponential backoff + pool circuit breakers) and
//! prints each run's retry accounting. `--topology racks=R,pdus=P`
//! attaches a hierarchical power topology (per-rack budgets, breakers,
//! and the rack guard) and prints each run's per-rack accounting;
//! multi-rack runs always use the sharded engine.

use antidope_repro::prelude::*;

/// Parse `--shards N` / `--shards=N`, `--retry`, and
/// `--topology racks=R,pdus=P` from the command line (defaults: 1
/// shard, no retry, no topology).
fn cli_args() -> (usize, bool, Option<TopologyConfig>) {
    let mut shards = 1;
    let mut retry = false;
    let mut topology = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--retry" {
            retry = true;
            continue;
        }
        if let Some(v) = match a.as_str() {
            "--topology" => args.next(),
            _ => a.strip_prefix("--topology=").map(str::to_string),
        } {
            topology = Some(parse_topology(&v));
            continue;
        }
        let value = if a == "--shards" {
            args.next()
        } else {
            a.strip_prefix("--shards=").map(str::to_string)
        };
        if let Some(v) = value {
            shards = v.parse().expect("--shards expects a positive integer");
        }
    }
    (shards, retry, topology)
}

/// Parse `racks=R,pdus=P` (pdus defaults to 1).
fn parse_topology(spec: &str) -> TopologyConfig {
    let (mut racks, mut pdus) = (1, 1);
    for part in spec.split(',') {
        match part.split_once('=') {
            Some(("racks", n)) => racks = n.parse().expect("racks expects a positive integer"),
            Some(("pdus", n)) => pdus = n.parse().expect("pdus expects a positive integer"),
            _ => panic!("--topology expects racks=R,pdus=P, got {part:?}"),
        }
    }
    TopologyConfig::with_racks(racks, pdus)
}

fn main() {
    let (shards, retry, topology) = cli_args();
    // A Colla-Filt flood at 390 req/s spread over 40 bots: each agent
    // stays far below the firewall's 150 req/s rule, but together they
    // push the rack past its oversubscribed power budget.
    let factory = |exp: &ExperimentConfig| {
        let horizon = SimTime::ZERO + exp.duration;
        let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
        let sources: Vec<Box<dyn TrafficSource>> = vec![
            Box::new(NormalUsers::new(
                trace,
                ServiceMix::alios_normal(),
                80.0,   // peak req/s of the legitimate population
                1_000,  // client address pool base
                60,     // distinct clients
                0,      // request-id base
                horizon,
                exp.seed,
            )),
            Box::new(FloodSource::against_service(
                AttackTool::HttpLoad { rate: 390.0 },
                ServiceKind::CollaFilt,
                50_000, // botnet address base
                40,     // bots
                1 << 40,
                SimTime::from_secs(5),
                horizon,
                exp.seed ^ 0x5EED,
            )),
        ];
        sources
    };

    println!(
        "Simulating 120 s on the paper rack (4 × 100 W, Medium-PB = 340 W{})…\n",
        if shards > 1 {
            format!(", {shards} shards")
        } else {
            String::new()
        }
    );
    for scheme in [SchemeKind::None, SchemeKind::Capping, SchemeKind::AntiDope] {
        let mut exp = ExperimentConfig::paper_window(
            ClusterConfig::paper_rack(BudgetLevel::Medium),
            scheme,
            42,
        );
        exp.cluster.shards = shards;
        if retry {
            exp.cluster.retry = Some(RetryConfig::default());
        }
        exp.cluster.topology = topology;
        exp.duration = SimDuration::from_secs(120);
        let report = antidope::run_experiment(&exp, &factory);
        println!("{}", report.oneline());
        println!(
            "    normal users: mean {:.1} ms, p90 {:.1} ms, availability {:.1}%",
            report.normal_latency.mean_ms,
            report.normal_latency.p90_ms,
            report.availability() * 100.0
        );
        println!(
            "    power: avg {:.0} W / peak {:.0} W against a {:.0} W budget ({} violating slots)",
            report.power.avg_w, report.power.peak_w, report.power.supply_w, report.power.violations
        );
        if let Some(r) = &report.retry {
            println!(
                "    resilience: {} retry attempts, {} recovered, {} exhausted, \
                 {} breaker trips, {} rerouted",
                r.attempts, r.recovered, r.exhausted, r.breaker_trips, r.rerouted
            );
        }
        if let Some(t) = &report.topology {
            let peaks: Vec<String> = t.rack_peak_w.iter().map(|w| format!("{w:.0}")).collect();
            println!(
                "    topology: {} racks / {} PDUs, rack peaks [{}] W, \
                 breach slots {:?}, hottest rack {}",
                t.racks,
                t.pdus,
                peaks.join(", "),
                t.rack_breach_slots,
                t.hottest_rack
            );
        }
        println!();
    }
    println!(
        "Anti-DOPE isolates the high-power flows on a suspect node and throttles\n\
         only there — normal users keep their latency while the budget holds."
    );
}
