//! Battery sizing: how much UPS does peak shaving actually need when the
//! "peak" is adversarial?
//!
//! Sweeps the battery sustain rating under the Shaving scheme against a
//! sustained DOPE flood, and reports whether the battery survives the
//! window and what the legitimate users experience. The punchline of
//! Fig 18: batteries provisioned for *occasional* utility peaks are a
//! consumable an attacker can drain at will.
//!
//! ```text
//! cargo run --release --example battery_sizing
//! ```

use antidope_repro::prelude::*;
use dcmetrics::export::Table;
use rayon::prelude::*;

fn main() {
    let sustains_min = [0.5, 1.0, 2.0, 4.0, 8.0];
    let window_s = 600;
    let attack_rate = 600.0;

    println!(
        "Shaving vs a sustained {attack_rate:.0} req/s Colla-Filt DOPE at Low-PB, {window_s} s window\n"
    );
    let reports: Vec<(f64, SimReport)> = sustains_min
        .par_iter()
        .map(|&mins| {
            let factory = move |exp: &ExperimentConfig| {
                let horizon = SimTime::ZERO + exp.duration;
                let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
                let sources: Vec<Box<dyn TrafficSource>> = vec![
                    Box::new(NormalUsers::new(
                        trace,
                        ServiceMix::alios_normal(),
                        80.0,
                        1_000,
                        60,
                        0,
                        horizon,
                        exp.seed,
                    )),
                    Box::new(FloodSource::against_service(
                        AttackTool::HttpLoad { rate: attack_rate },
                        ServiceKind::CollaFilt,
                        50_000,
                        40,
                        1 << 40,
                        SimTime::from_secs(5),
                        horizon,
                        exp.seed ^ 0x5EED,
                    )),
                ];
                sources
            };
            let mut cluster = ClusterConfig::paper_rack(BudgetLevel::Low);
            cluster.battery_sustain = SimDuration::from_secs_f64(mins * 60.0);
            let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::Shaving, 5);
            exp.duration = SimDuration::from_secs(window_s);
            (mins, antidope::run_experiment(&exp, &factory))
        })
        .collect();

    let mut t = Table::new(
        "Battery sustain sweep (Shaving, Low-PB)",
        &[
            "sustain_min",
            "capacity_kJ",
            "min_soc",
            "survived",
            "p90_ms",
            "violations",
        ],
    );
    for (mins, r) in &reports {
        t.push_row(vec![
            format!("{mins:.1}"),
            Table::fmt_f64(r.battery.capacity_j / 1e3),
            Table::fmt_f64(r.battery.min_soc),
            (r.battery.min_soc > 0.05).to_string(),
            Table::fmt_f64(r.normal_latency.p90_ms),
            r.power.violations.to_string(),
        ]);
    }
    println!("{}", t.to_text());
    println!(
        "Against a *sustained* adversarial peak, no reasonable battery survives —\n\
         the attacker outlasts stored energy; only request-aware control breaks the race."
    );
}
