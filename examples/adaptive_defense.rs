//! Adaptive defense: Anti-DOPE without the oracle.
//!
//! The paper assumes PDF knows each URL's power intensity ahead of time
//! — an offline-profiled suspect list. A patient attacker breaks that
//! assumption by rotating the flood across URLs the list has never
//! seen. This example runs that attack against three provenances of the
//! same defense:
//!
//! * **oracle** — impossible knowledge: every rotation URL pre-profiled.
//! * **online** — the power-attribution profiler learns intensities at
//!   runtime from node power telemetry and hot-swaps the suspect list.
//! * **stale** — the offline list only; the rotating flood rides the
//!   innocent pool and the defense degrades toward plain capping.
//!
//! ```text
//! cargo run --release --example adaptive_defense
//! ```

use antidope::scheme::{AntiDopeScheme, PowerScheme};
use antidope_repro::prelude::*;
use dcmetrics::export::Table;
use rayon::prelude::*;
use workloads::service::ServiceKind;

const URL_BASE: u16 = 800;
const URL_SPACE: u16 = 6;
const ROTATION_S: u64 = 20;
const ATTACK_RATE: f64 = 390.0;

fn rotating_attack(seed: u64, horizon: SimTime) -> RotatingFloodSource {
    RotatingFloodSource::against_service(
        ATTACK_RATE,
        ServiceKind::CollaFilt,
        URL_BASE,
        URL_SPACE,
        SimDuration::from_secs(ROTATION_S),
        50_000,
        40,
        1 << 40,
        SimTime::from_secs(5),
        horizon,
        seed ^ 0x707A7E,
    )
}

fn run_arm(arm: &str, window_s: u64, seed: u64) -> SimReport {
    let mut cluster = ClusterConfig::paper_rack(BudgetLevel::Low);
    cluster.firewall = true;
    if arm == "online" {
        cluster.profiler = Some(ProfilerConfig::default());
    }
    let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::AntiDope, seed);
    exp.duration = SimDuration::from_secs(window_s);
    let horizon = SimTime::ZERO + exp.duration;
    let attack = rotating_attack(exp.seed, horizon);
    let scheme: Box<dyn PowerScheme> = if arm == "oracle" {
        Box::new(AntiDopeScheme::with_oracle_profiles(
            &exp.cluster,
            attack.oracle_profiles(),
        ))
    } else {
        Box::new(AntiDopeScheme::new(&exp.cluster))
    };
    let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
    let sources: Vec<Box<dyn TrafficSource>> = vec![
        Box::new(NormalUsers::new(
            trace,
            ServiceMix::alios_normal(),
            80.0,
            1_000,
            60,
            0,
            horizon,
            exp.seed,
        )),
        Box::new(attack),
    ];
    ClusterSim::run_with_scheme(&exp, scheme, sources)
}

fn main() {
    let window_s = 300;
    let seed = 2019;

    println!(
        "Adaptive defense: Anti-DOPE at Low-PB under a URL-rotating flood\n\
         ({ATTACK_RATE:.0} req/s over {URL_SPACE} URLs, hop every {ROTATION_S} s), {window_s} s window\n"
    );

    let arms = ["oracle", "online", "stale"];
    let reports: Vec<(&str, SimReport)> = arms
        .par_iter()
        .map(|&arm| (arm, run_arm(arm, window_s, seed)))
        .collect();

    let mut t = Table::new(
        "Suspect-list provenance under rotation",
        &[
            "list",
            "p99_ms",
            "mean_ms",
            "availability",
            "violation_frac",
            "to_suspect_pool",
        ],
    );
    for (arm, r) in &reports {
        t.push_row(vec![
            arm.to_string(),
            Table::fmt_f64(r.normal_latency.p99_ms),
            Table::fmt_f64(r.normal_latency.mean_ms),
            format!("{:.1}%", r.availability() * 100.0),
            format!("{:.4}", r.power.violation_fraction),
            r.traffic.to_suspect_pool.to_string(),
        ]);
    }
    println!("{}", t.to_text());

    if let Some((_, online)) = reports.iter().find(|(arm, _)| *arm == "online") {
        let p = online.profiler.as_ref().expect("online arm ran the profiler");
        println!(
            "Profiler ledger (online arm): {} observations, {} URLs tracked,\n\
             {} suspect, {} reclassifications, {} drift events, {} stale demotions\n",
            p.observations,
            p.tracked_urls,
            p.suspect_urls,
            p.reclassifications,
            p.drift_events,
            p.stale_demotions
        );
    }
    println!(
        "The online profiler learns each hopped-to URL from power telemetry within\n\
         a few monitor ticks and republishes the suspect list, recovering the\n\
         oracle's tail latency; the stale offline list never isolates the flood,\n\
         so the whole cluster throttles and mean latency inflates for everyone."
    );
}
